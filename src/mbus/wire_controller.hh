/**
 * @file
 * The always-on wire controller: the forward/drive mux on one ring.
 *
 * Every MBus chip has exactly this much always-powered logic per
 * line: a mux that either forwards the input to the output (the
 * "shoot-through" path) or drives a locally chosen value. Switching
 * from driving back to forwarding snaps the output to the current
 * input, which is what produces the momentary glitches the paper
 * notes in Figure 5 -- they resolve within a hop delay, before the
 * next latch edge.
 */

#ifndef MBUS_BUS_WIRE_CONTROLLER_HH
#define MBUS_BUS_WIRE_CONTROLLER_HH

#include <cstdint>

#include "wire/net.hh"

namespace mbus {
namespace bus {

/** Forward/drive mux for one node on one ring line. */
class WireController : private wire::EdgeListener
{
  public:
    enum class Mode : std::uint8_t { Forward, Drive };

    /**
     * @param in The upstream ring segment (this node's IN pad).
     * @param out The downstream ring segment (this node's OUT pad).
     * @param muteWhileDriving Chunked-dispatch optimization: while in
     *        Drive mode input edges are provably ignored (onInput is
     *        a no-op), so the input subscription is muted for the
     *        duration and unmuted on the switch back to forwarding --
     *        which snaps the output from in.value() anyway, so no
     *        edge information is lost.
     */
    WireController(wire::Net &in, wire::Net &out,
                   bool muteWhileDriving = false);

    /** Switch to (or remain in) forwarding mode. */
    void forward();

    /** Drive a fixed value, breaking the ring at this node. */
    void drive(bool v);

    Mode mode() const { return mode_; }

    /** @return the value this node is currently putting out. */
    bool outputValue() const { return out_.drivenValue(); }

    /** @return true if currently forwarding. */
    bool forwarding() const { return mode_ == Mode::Forward; }

  private:
    void onNetEdge(wire::Net &net, bool value) override;
    void onInput(bool v);

    wire::Net &in_;
    wire::Net &out_;
    Mode mode_ = Mode::Forward;
    bool muteWhileDriving_ = false;
    bool muted_ = false;
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_WIRE_CONTROLLER_HH
