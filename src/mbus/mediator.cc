#include "mbus/mediator.hh"

#include "sim/logging.hh"

namespace mbus {
namespace bus {

Mediator::Mediator(Context ctx) : ctx_(std::move(ctx))
{
    tickSink_.med = this;
    checkSink_.med = this;
    ctx_.dataIn.listen(wire::Edge::Any, *this);
}

bool
Mediator::useTrains() const
{
    return ctx_.cfg.edgeTrains && ctx_.cfg.hopDelay > 0 &&
           ctx_.cfg.tickTrainEdges > 0;
}

sim::SimTime
Mediator::ringCheckDelay() const
{
    sim::SimTime ring_delay =
        static_cast<sim::SimTime>(ctx_.ringSize) * ctx_.cfg.hopDelay +
        ctx_.cfg.extraRingLatency;
    return ring_delay + 2 * ctx_.cfg.hopDelay;
}

void
Mediator::onNetEdge(wire::Net &, bool value)
{
    // Track DATA edges returning to the mediator during interjection
    // so the sequence keeps toggling until it has propagated the
    // whole ring (robust even when a driving node blocks the first
    // edges).
    if (state_ == State::Interjecting)
        ++dataInEdgesDuringIntj_;
    // Falling-edge wakeup detector, live only once arm()ed.
    if (!value && armed_ && state_ == State::Asleep)
        onDataFall();
}

void
Mediator::arm()
{
    armed_ = true;
}

sim::SimTime
Mediator::period() const
{
    // clockDriftFactor is exactly 1.0 outside fault-injection drift
    // windows; x * 1.0 is IEEE-exact, so the no-fault tick is
    // bit-identical to the pre-fault-engine one.
    return sim::periodFromHz(ctx_.cfg.busClockHz *
                             ctx_.cfg.clockDriftFactor);
}

void
Mediator::setMaxMessageBytes(std::size_t bytes)
{
    if (bytes < kMinMaxMessageBytes) {
        sim::warn("mediator max message length clamped to the 1 kB spec "
             "minimum");
        bytes = kMinMaxMessageBytes;
    }
    maxMessageBytes_ = bytes;
}

void
Mediator::onDataFall()
{
    // Self-start (Sec 4.2): the falling edge wakes the mediator; it
    // begins toggling CLK as soon as it is active.
    state_ = State::WakePending;
    sim::SimTime wake = ctx_.cfg.mediatorWakeDelay
                            ? ctx_.cfg.mediatorWakeDelay
                            : period();
    ctx_.sim.schedule(wake, [this] { startClocking(); });
}

void
Mediator::startClocking()
{
    ++stats_.transactions;
    state_ = State::Clocking;
    clkLevel_ = true;
    rising_ = falling_ = 0;
    addrBitsSeen_ = 0;
    addrBitsExpected_ = 8;
    addrAccum_ = 0;
    dataCyclesSeen_ = 0;

    // Arbitration: the mediator does not forward DATA. If the host's
    // member port is itself requesting (driving low), its drive is
    // already the ring break; otherwise the mediator parks the output
    // high. Under mutable priority (Sec 7) the break belongs to the
    // designated member node instead, and the mediator forwards.
    if (!ctx_.cfg.useNodeArbBreak && ctx_.dataCtl.forwarding()) {
        medDrivingData_ = true;
        ctx_.link.mediatorOwnsData = true;
        ctx_.dataCtl.drive(true);
    }
    if (useTrains()) {
        // First edge inline (as the discrete path drives it), then
        // the rest of the chunk rides the tick + ring-check trains.
        onTickEdge(!clkLevel_);
        if (state_ == State::Clocking)
            armTickTrain();
    } else {
        driveClockEdge();
    }
}

void
Mediator::onTickEdge(bool level)
{
    clkLevel_ = level;
    ctx_.clkCtl.drive(level);

    if (level) {
        ++rising_;
        ++stats_.clockCycles;
        ctx_.ledger.charge(ctx_.nodeId, power::EnergyCategory::Mediator,
                           ctx_.energy.mediatorPerCycle());
        afterRisingEdge(rising_); // May begin an interjection.
    } else {
        ++falling_;
        if (falling_ == 2 && medDrivingData_) {
            // Arbitration over: begin forwarding DATA (Fig 5).
            medDrivingData_ = false;
            ctx_.link.mediatorOwnsData = false;
            ctx_.dataCtl.forward();
        }
    }
}

void
Mediator::driveClockEdge()
{
    if (state_ != State::Clocking)
        return;
    onTickEdge(!clkLevel_);
    if (state_ != State::Clocking)
        return; // Interjection began.

    scheduleRingCheck(clkLevel_);
    clockEvent_ =
        ctx_.sim.schedule(period() / 2, [this] { driveClockEdge(); });
}

void
Mediator::armTickTrain()
{
    armedHalfPeriod_ = period() / 2;
    tickEdgesLeft_ = ctx_.cfg.tickTrainEdges;
    // The ring-check train covers the edge just driven plus the whole
    // tick chunk; arming it first keeps the discrete tie-break order
    // (each edge's check was scheduled before the next tick).
    checkEvent_ = ctx_.sim.scheduleEdgeTrain(
        ringCheckDelay(), armedHalfPeriod_, tickEdgesLeft_ + 1,
        checkSink_, clkLevel_);
    clockEvent_ = ctx_.sim.scheduleEdgeTrain(
        armedHalfPeriod_, armedHalfPeriod_, tickEdgesLeft_, tickSink_,
        !clkLevel_);
}

void
Mediator::onTrainTick(bool level)
{
    if (state_ != State::Clocking)
        return;
    if (period() / 2 != armedHalfPeriod_) {
        // The clock was retimed mid-transaction (config broadcast):
        // drop both trains and re-arm at the new period, exactly
        // where the discrete path would start spacing edges anew.
        clockEvent_.cancel();
        checkEvent_.cancel();
        onTickEdge(level);
        if (state_ == State::Clocking)
            armTickTrain();
        return;
    }
    const bool refill = --tickEdgesLeft_ == 0;
    onTickEdge(level);
    if (refill && state_ == State::Clocking)
        armTickTrain();
}

void
Mediator::onRingCheck(bool expected)
{
    if (state_ != State::Clocking)
        return;
    if (ctx_.clkIn.value() != expected)
        beginInterjection(InterjectReason::RingBreak);
}

void
Mediator::afterRisingEdge(std::uint32_t r)
{
    if (r == 1) {
        // Arbitration sample: high means nobody is requesting -- a
        // null transaction. Raise a general error (Fig 6). With a
        // member-node ring break (mutable priority) the mediator's
        // view can be masked by the break; true null transactions
        // then resolve through the watchdog instead.
        if (!ctx_.cfg.useNodeArbBreak && ctx_.dataIn.value())
            beginInterjection(InterjectReason::NoWinner);
        return;
    }
    if (r >= 4)
        watchdogLatch();
}

void
Mediator::watchdogLatch()
{
    if (addrBitsSeen_ < addrBitsExpected_) {
        addrAccum_ = (addrAccum_ << 1) | (ctx_.dataIn.value() ? 1 : 0);
        ++addrBitsSeen_;
        if (addrBitsSeen_ == 4 &&
            (addrAccum_ & 0xF) == kFullAddressMarker) {
            addrBitsExpected_ = 32;
        }
        return;
    }
    ++dataCyclesSeen_;
    std::uint64_t bytes =
        dataCyclesSeen_ *
        static_cast<std::uint64_t>(ctx_.cfg.dataLanes) / 8;
    if (bytes > maxMessageBytes_) {
        // Runaway message (Sec 7): terminate with a general error.
        ++stats_.watchdogKills;
        beginInterjection(InterjectReason::Watchdog);
    }
}

void
Mediator::scheduleRingCheck(bool expected)
{
    std::uint64_t epoch = checkEpoch_;
    ctx_.sim.schedule(ringCheckDelay(),
                      [this, expected, epoch] {
                          if (epoch != checkEpoch_ ||
                              state_ != State::Clocking) {
                              return;
                          }
                          if (ctx_.clkIn.value() != expected)
                              beginInterjection(
                                  InterjectReason::RingBreak);
                      });
}

void
Mediator::hostInterjectionRequest()
{
    if (state_ == State::Clocking)
        beginInterjection(InterjectReason::RingBreak);
}

void
Mediator::forceInterjection()
{
    if (state_ == State::Interjecting || state_ == State::Control)
        return; // A reset is already underway.
    clockEvent_.cancel();
    state_ = State::Clocking; // Any pre-interjection state works.
    beginInterjection(InterjectReason::Rescue);
}

void
Mediator::beginInterjection(InterjectReason reason)
{
    ++checkEpoch_;
    clockEvent_.cancel();
    checkEvent_.cancel();
    reason_ = reason;
    if (reason == InterjectReason::RingBreak)
        ++stats_.interjections;
    else if (reason == InterjectReason::NoWinner)
        ++stats_.generalErrors;
    state_ = State::Interjecting;

    // CLK parks high for the whole interjection. If the blocked edge
    // left our output low, restore it -- nodes between the mediator
    // and the interjector observe one extra short cycle, which is why
    // MBus requires byte-aligned messages (Sec 4.9).
    if (!clkLevel_) {
        clkLevel_ = true;
        ctx_.clkCtl.drive(true);
    }

    // Take the DATA line and toggle it with no CLK edges.
    medDrivingData_ = true;
    ctx_.link.mediatorOwnsData = true;
    togglesDriven_ = 0;
    dataInEdgesDuringIntj_ = 0;
    ctx_.sim.schedule(period() / 2, [this] { interjectionToggle(); });
}

void
Mediator::interjectionToggle()
{
    if (state_ != State::Interjecting)
        return;
    bool v = !ctx_.dataCtl.outputValue();
    ctx_.dataCtl.drive(v);
    ++togglesDriven_;

    bool ends_high = v;
    bool enough = togglesDriven_ >= 6;
    bool confirmed = dataInEdgesDuringIntj_ >= 3;
    if (ends_high && enough && (confirmed || togglesDriven_ >= 32)) {
        if (!confirmed) {
            sim::warn("interjection not confirmed around the ring after ",
                 togglesDriven_, " toggles; proceeding to control");
        }
        // Let the final toggle flush, then run the control cycles.
        ctx_.sim.schedule(period() / 2, [this] { beginControl(); });
        return;
    }
    ctx_.sim.schedule(period() / 2, [this] { interjectionToggle(); });
}

void
Mediator::beginControl()
{
    if (state_ != State::Interjecting)
        return;
    state_ = State::Control;
    ctlRising_ = ctlFalling_ = 0;
    ctlBit0_ = ctlBit1_ = false;
    driveControlEdge();
}

void
Mediator::driveControlEdge()
{
    if (state_ != State::Control)
        return;
    clkLevel_ = !clkLevel_;
    ctx_.clkCtl.drive(clkLevel_);

    if (!clkLevel_) {
        ++ctlFalling_;
        if (ctlFalling_ == 2) {
            if (generalError()) {
                // The mediator itself drives the {0,0} code.
                ctx_.dataCtl.drive(false);
            } else {
                // Hand the line to the interjector for control bit 0.
                medDrivingData_ = false;
                ctx_.link.mediatorOwnsData = false;
                ctx_.dataCtl.forward();
            }
        } else if (ctlFalling_ == 4) {
            // Return to idle: drive DATA high (Sec 4.9 / Fig 7 ev 7).
            medDrivingData_ = true;
            ctx_.link.mediatorOwnsData = true;
            ctx_.dataCtl.drive(true);
        }
    } else {
        ++ctlRising_;
        ++stats_.clockCycles;
        ctx_.ledger.charge(ctx_.nodeId, power::EnergyCategory::Mediator,
                           ctx_.energy.mediatorPerCycle());
        if (ctlRising_ == 2)
            ctlBit0_ = ctx_.dataIn.value();
        if (ctlRising_ == 3)
            ctlBit1_ = ctx_.dataIn.value();
        if (ctlRising_ == 4) {
            finishTransaction();
            return;
        }
    }

    clockEvent_ = ctx_.sim.schedule(period() / 2,
                                    [this] { driveControlEdge(); });
}

void
Mediator::finishTransaction()
{
    // Flush the ring, then release everything and go back to sleep.
    ctx_.sim.schedule(ringCheckDelay(), [this] {
        medDrivingData_ = false;
        ctx_.link.mediatorOwnsData = false;
        ctx_.dataCtl.forward();
        ctx_.clkCtl.forward();
        ++checkEpoch_;
        checkEvent_.cancel();
        state_ = State::Asleep;
        if (onIdle_)
            onIdle_();
        // Late request: a node may have pulled DATA low while we were
        // putting the bus to sleep.
        if (!ctx_.dataIn.value())
            onDataFall();
    });
}

} // namespace bus
} // namespace mbus
