/**
 * @file
 * The always-on sleep controller (the minimalist wakeup frontend).
 *
 * Two jobs, both tiny enough to stay powered forever (Sec 4.4):
 *
 *  1. Feed CLK edges into the bus controller's power domain so the
 *     arbitration phase of every transaction doubles as the chip's
 *     four-edge wakeup sequence.
 *  2. Count edges from the start of each transaction. The count is
 *     the authoritative phase reference: a bus controller that woke
 *     mid-arbitration reads the always-on count instead of its own
 *     (it slept through the first edges).
 */

#ifndef MBUS_BUS_SLEEP_CONTROLLER_HH
#define MBUS_BUS_SLEEP_CONTROLLER_HH

#include <cstdint>
#include <functional>

#include "power/domain.hh"
#include "wire/net.hh"

namespace mbus {
namespace bus {

/**
 * Receiver of counted clock edges (the bus controller FSM).
 *
 * The sleep controller delivers each local CLK edge -- after wakeup
 * stepping and counting -- straight to this interface, so the
 * per-edge protocol path goes through one virtual call instead of a
 * std::function trampoline.
 */
class ClockEdgeSink
{
  public:
    virtual void onClkEdge(bool rising) = 0;

  protected:
    ~ClockEdgeSink() = default;
};

/** Always-on wakeup frontend and transaction edge counter. */
class SleepController : private wire::EdgeListener
{
  public:
    /** Callback fired on every local CLK edge after counting. */
    using EdgeHook = std::function<void(bool rising)>;

    /**
     * @param localClk The node's local clock reference net.
     * @param busDomain The bus controller's power domain to step.
     */
    SleepController(wire::Net &localClk, power::PowerDomain &busDomain);

    /** Rising edges seen since the current transaction began. */
    std::uint32_t risingCount() const { return rising_; }

    /** Falling edges seen since the current transaction began. */
    std::uint32_t fallingCount() const { return falling_; }

    /** True between the first CLK edge and noteIdle(). */
    bool transactionActive() const { return active_; }

    /** Bus controller signals end-of-transaction; counters reset. */
    void noteIdle();

    /**
     * Register the edge sink run after this controller processes
     * each edge (the bus controller's FSM). Using a sink rather
     * than a second Net subscription pins the ordering: wakeup
     * stepping and counting always precede FSM work on the same
     * edge. The sink fires before any closure hook.
     */
    void setEdgeSink(ClockEdgeSink &sink) { sink_ = &sink; }

    /** Closure variant of setEdgeSink (tests / prototyping). */
    void setEdgeHook(EdgeHook hook) { hook_ = std::move(hook); }

    /** Transactions observed (for stats). */
    std::uint64_t transactionsSeen() const { return transactions_; }

  private:
    void onNetEdge(wire::Net &net, bool value) override;
    void onClkEdge(bool value);

    power::PowerDomain &busDomain_;
    ClockEdgeSink *sink_ = nullptr;
    EdgeHook hook_;

    bool active_ = false;
    std::uint32_t rising_ = 0;
    std::uint32_t falling_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_SLEEP_CONTROLLER_HH
