/**
 * @file
 * MBus protocol constants and enums shared by all bus components.
 *
 * Cycle counts follow Section 6.1 of the paper exactly: arbitration
 * (3 cycles: arbitrate, priority-arbitrate, reserved), addressing
 * (8 short / 32 full), interjection (5 cycle-times), and control (3
 * cycles), for a length-independent overhead of 19 or 43 cycles.
 */

#ifndef MBUS_BUS_PROTOCOL_HH
#define MBUS_BUS_PROTOCOL_HH

#include <cstdint>

namespace mbus {
namespace bus {

// --- Cycle accounting (Sec 6.1) --------------------------------------

/** Arbitration phase: arbitrate + priority + reserved. */
constexpr int kCyclesArbitration = 3;
/** Short addressing: one byte on the wire. */
constexpr int kCyclesAddrShort = 8;
/** Full addressing: one 32-bit word on the wire. */
constexpr int kCyclesAddrFull = 32;
/** Interjection: detect + three DATA pulses + resume. */
constexpr int kCyclesInterjection = 5;
/** Control: sync + two control bits. */
constexpr int kCyclesControl = 3;

/** Total protocol overhead with short addressing (19). */
constexpr int kOverheadShortBits =
    kCyclesArbitration + kCyclesAddrShort + kCyclesInterjection +
    kCyclesControl;
/** Total protocol overhead with full addressing (43). */
constexpr int kOverheadFullBits =
    kCyclesArbitration + kCyclesAddrFull + kCyclesInterjection +
    kCyclesControl;

static_assert(kOverheadShortBits == 19, "Sec 6.1: short overhead is 19");
static_assert(kOverheadFullBits == 43, "Sec 6.1: full overhead is 43");

// --- Address space (Secs 4.6, 4.7) -----------------------------------

/** Short prefix reserved for broadcast messages. */
constexpr std::uint8_t kBroadcastPrefix = 0x0;
/** Short prefix reserved to introduce a full address. */
constexpr std::uint8_t kFullAddressMarker = 0xF;
/** Usable short prefixes per system (16 minus broadcast and 0xF). */
constexpr int kUsableShortPrefixes = 14;
/** Width of a full prefix in bits (2^20 chip designs). */
constexpr int kFullPrefixBits = 20;
/** Width of a functional unit id in bits. */
constexpr int kFuIdBits = 4;

// --- Well-known broadcast channels ------------------------------------

/** Broadcast channel used by run-time enumeration (Sec 4.7). */
constexpr std::uint8_t kChannelEnumerate = 0x0;
/** Broadcast channel carrying bus configuration messages (Sec 7). */
constexpr std::uint8_t kChannelConfig = 0x1;
/** First channel free for application use. */
constexpr std::uint8_t kChannelUserBase = 0x2;

// --- Policy constants (Sec 7) -----------------------------------------

/** Minimum value a mediator's maximum-message-length may take: 1 kB. */
constexpr std::size_t kMinMaxMessageBytes = 1024;

/**
 * Progress guarantee: an arbitration winner may send at least this
 * many payload bytes before another node may interject it.
 */
constexpr std::size_t kMinProgressBytes = 4;

// --- Control phase encoding (Sec 4.9, Figs 6 and 7) -------------------

/**
 * The two control bits, as (bit0, bit1) pairs.
 *
 * Bit 0 is driven by the interjector and states whether the message
 * completed; bit 1 carries the acknowledgment (driven low to ACK, per
 * Figure 7 event 6).
 */
enum class ControlCode : std::uint8_t {
    AckEom = 0b10,       ///< bit0=1 (EoM), bit1=0 (receiver ACK'd).
    NakEom = 0b11,       ///< bit0=1 (EoM), bit1=1 (no ACK).
    GeneralError = 0b00, ///< bit0=0, bit1=0 (mediator-signalled).
    Abort = 0b01,        ///< bit0=0, bit1=1 (receiver/third-party).
};

/** Build a ControlCode from the two latched control bits. */
constexpr ControlCode
controlCodeFromBits(bool bit0, bool bit1)
{
    return static_cast<ControlCode>((bit0 ? 0b10 : 0) | (bit1 ? 0b01 : 0));
}

/** @return a printable name for a control code. */
const char *controlCodeName(ControlCode code);

/** Final status of a transmission attempt, as seen by the sender. */
enum class TxStatus : std::uint8_t {
    Ack,          ///< Message delivered and acknowledged.
    Nak,          ///< Message sent; no acknowledgment.
    Broadcast,    ///< Broadcast sent (broadcasts are not ACK'd).
    Interrupted,  ///< A third party interjected mid-message.
    RxAbort,      ///< The receiver aborted (e.g. buffer overrun).
    GeneralError, ///< Mediator signalled an error (incl. watchdog).
    LostArbitration, ///< Internal: retried automatically.
    Reset,        ///< Killed by a bus reset: the node browned out
                  ///< with the message in flight, or the watchdog
                  ///< tore the transfer down to reclaim the bus.
};

/** @return a printable name for a TX status. */
const char *txStatusName(TxStatus status);

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_PROTOCOL_HH
