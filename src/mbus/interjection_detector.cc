#include "mbus/interjection_detector.hh"

namespace mbus {
namespace bus {

InterjectionDetector::InterjectionDetector(wire::Net &clk, wire::Net &data)
    : dataNet_(&data)
{
    data.listen(wire::Edge::Any, *this);
    clk.listen(wire::Edge::Any, *this);
}

void
InterjectionDetector::onNetEdge(wire::Net &net, bool)
{
    if (&net == dataNet_)
        onDataEdge();
    else
        onClkEdge();
}

void
InterjectionDetector::onDataEdge()
{
    if (count_ < kThreshold)
        ++count_;
    if (count_ >= kThreshold && !asserted_) {
        asserted_ = true;
        ++assertions_;
        if (onInterjection_)
            onInterjection_();
    }
}

void
InterjectionDetector::onClkEdge()
{
    count_ = 0;
    asserted_ = false;
}

} // namespace bus
} // namespace mbus
