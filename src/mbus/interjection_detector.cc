#include "mbus/interjection_detector.hh"

namespace mbus {
namespace bus {

InterjectionDetector::InterjectionDetector(wire::Net &clk, wire::Net &data,
                                           bool pullClkEpoch)
    : clkNet_(&clk), dataNet_(&data), pull_(pullClkEpoch)
{
    data.listen(wire::Edge::Any, *this);
    if (pull_)
        clkEpochSeen_ = clk.edgeEpoch();
    else
        clk.listen(wire::Edge::Any, *this);
}

void
InterjectionDetector::onNetEdge(wire::Net &net, bool)
{
    if (&net == dataNet_)
        onDataEdge();
    else
        onClkEdge();
}

void
InterjectionDetector::onDataEdge()
{
    if (pull_) {
        // Lazy CLK reset: consume any CLK edges delivered since the
        // last DATA edge before counting this one.
        const std::uint64_t epoch = clkNet_->edgeEpoch();
        if (epoch != clkEpochSeen_) {
            clkEpochSeen_ = epoch;
            count_ = 0;
            asserted_ = false;
        }
    }
    // Count only while CLK sits high (the libmbus discipline): a
    // genuine interjection is the mediator toggling DATA under a
    // parked-high clock. DATA ripples that follow a falling CLK edge
    // -- payload bit drives, control-chain handoffs, arbitration
    // releases -- are ordinary bus activity; letting them accumulate
    // can re-assert the detector mid-control-chain, re-basing the
    // controller's control counters and wedging it in Control.
    if (!clkNet_->value())
        return;
    if (count_ < kThreshold)
        ++count_;
    if (count_ >= kThreshold && !asserted_) {
        asserted_ = true;
        ++assertions_;
        if (onInterjection_)
            onInterjection_();
    }
}

void
InterjectionDetector::onClkEdge()
{
    count_ = 0;
    asserted_ = false;
}

} // namespace bus
} // namespace mbus
