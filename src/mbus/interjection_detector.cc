#include "mbus/interjection_detector.hh"

namespace mbus {
namespace bus {

InterjectionDetector::InterjectionDetector(wire::Net &clk, wire::Net &data)
{
    data.subscribe(wire::Edge::Any, [this](bool) { onDataEdge(); });
    clk.subscribe(wire::Edge::Any, [this](bool) { onClkEdge(); });
}

void
InterjectionDetector::onDataEdge()
{
    if (count_ < kThreshold)
        ++count_;
    if (count_ >= kThreshold && !asserted_) {
        asserted_ = true;
        ++assertions_;
        if (onInterjection_)
            onInterjection_();
    }
}

void
InterjectionDetector::onClkEdge()
{
    count_ = 0;
    asserted_ = false;
}

} // namespace bus
} // namespace mbus
