/**
 * @file
 * The interjection detector of Section 4.9.
 *
 * "In normal MBus operation, DATA never toggles meaningfully without
 * a CLK edge. This allows us to design a reliable, independent
 * interjection-detection module, essentially a saturating counter
 * clocked by DATA and reset by CLK."
 *
 * The threshold is 3 DATA edges: normal operation produces at most
 * one meaningful DATA edge per CLK half-cycle plus at most one
 * drive-to-forward handoff glitch, so 2 edges can occur legitimately;
 * 3 cannot. The mediator's interjection sequence drives 6 edges so
 * every node crosses the threshold even when a driving node blocks
 * the first few edges from propagating.
 */

#ifndef MBUS_BUS_INTERJECTION_DETECTOR_HH
#define MBUS_BUS_INTERJECTION_DETECTOR_HH

#include <cstdint>
#include <functional>

#include "wire/net.hh"

namespace mbus {
namespace bus {

/** Saturating DATA-edge counter, reset by CLK edges. */
class InterjectionDetector : private wire::EdgeListener
{
  public:
    /** DATA edges (with no intervening CLK edge) that assert. */
    static constexpr int kThreshold = 3;

    /**
     * @param clk The node's local CLK net (resets the counter).
     * @param data The node's local DATA net (clocks the counter).
     * @param pullClkEpoch Chunked-dispatch mode: instead of
     *        subscribing to CLK (one virtual call per CLK edge whose
     *        only effect is a counter reset), snapshot the CLK net's
     *        edge epoch and detect intervening CLK edges lazily on
     *        each DATA edge. Equivalent for every same-timestamp
     *        ordering: a CLK edge delivered before a DATA edge has
     *        already bumped the epoch; one delivered after it resets
     *        the count before it is next consulted -- exactly when
     *        the push-mode reset would have taken effect.
     */
    InterjectionDetector(wire::Net &clk, wire::Net &data,
                         bool pullClkEpoch = false);

    /** Register the assertion callback (the bus controller reset). */
    void
    setOnInterjection(std::function<void()> fn)
    {
        onInterjection_ = std::move(fn);
    }

    /** Current counter value (for tests). In pull mode a CLK edge
     *  since the last DATA edge reads as the reset it implies. */
    int
    count() const
    {
        if (pull_ && clkNet_->edgeEpoch() != clkEpochSeen_)
            return 0;
        return count_;
    }

    /** Total assertions observed. */
    std::uint64_t assertions() const { return assertions_; }

  private:
    void onNetEdge(wire::Net &net, bool value) override;
    void onDataEdge();
    void onClkEdge();

    wire::Net *clkNet_;
    wire::Net *dataNet_;
    std::function<void()> onInterjection_;
    bool pull_ = false;
    std::uint64_t clkEpochSeen_ = 0;
    int count_ = 0;
    bool asserted_ = false;
    std::uint64_t assertions_ = 0;
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_INTERJECTION_DETECTOR_HH
