#include "mbus/bus_controller.hh"

#include <utility>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace mbus {
namespace bus {

namespace {

/** Data cycles needed for @p payloadBits across @p lanes. */
std::uint32_t
dataCycles(std::size_t payloadBits, int lanes)
{
    if (payloadBits == 0)
        return 0;
    return static_cast<std::uint32_t>(
        (payloadBits + static_cast<std::size_t>(lanes) - 1) /
        static_cast<std::size_t>(lanes));
}

} // namespace

BusController::BusController(BusControllerContext ctx, NodeConfig cfg)
    : ctx_(std::move(ctx)), cfg_(std::move(cfg))
{
    if (cfg_.staticShortPrefix)
        shortPrefix_ = *cfg_.staticShortPrefix;
}

void
BusController::send(Message msg, SendCallback cb, bool cancelOnArbLoss)
{
    if (!msg.dest.isBroadcast() && !msg.dest.isFull() &&
        msg.dest.shortPrefix() == shortPrefix_) {
        sim::warn("node ", ctx_.nodeId, " sending to its own short prefix");
    }
    txQueue_.push_back(
        PendingTx{std::move(msg), std::move(cb), cancelOnArbLoss, 0});
    tryRequest();
}

void
BusController::tryRequest()
{
    if (txQueue_.empty() || txArmed_)
        return;
    // A node that decides to transmit powers its own bus controller:
    // the layer is awake and locally clocked, so the wakeup ladder
    // runs off the local clock rather than bus edges.
    if (!ctx_.busDomain.active())
        ctx_.busDomain.wakeImmediately();
    if (ctx_.sleepCtl.transactionActive() || phase_ != Phase::Idle)
        return; // Busy; the post-idle window will retry.
    txArmed_ = true;
    ctx_.intCtl.noteBusBusy();
    // Break the ring: request the bus (Sec 4.3).
    ctx_.dataCtl.drive(false);
}

void
BusController::interject()
{
    if (phase_ == Phase::Idle || role_ == Role::Tx)
        return;
    wantInterject_ = true;
    if (dataBytesSeen_ >= kMinProgressBytes && phase_ == Phase::Active &&
        addressResolved_) {
        requestInterjection(false);
    }
    // Otherwise deferred: checked at each completed byte.
}

void
BusController::onPowerLost()
{
    // Power gating loses all controller state (Sec 3): model exactly
    // that by resetting the FSM. The TX queue conceptually lives in
    // the layer (it re-arms the controller), so it survives.
    phase_ = Phase::Idle;
    role_ = Role::None;
    txArmed_ = false;
    requestedThisTxn_ = false;
    wonArb_ = priorityDriven_ = wonPriority_ = backedOff_ = false;
    addressResolved_ = false;
    addrAccum_ = 0;
    addrBitsSeen_ = 0;
    addrBitsExpected_ = 8;
    rxBytes_.clear();
    rxBitBuffer_ = 0;
    rxBitsPending_ = 0;
    dataBitsSeen_ = dataBytesSeen_ = 0;
    iAmInterjector_ = interjectorEom_ = wantInterject_ = false;
}

void
BusController::powerFail()
{
    // The fault engine records the Brownout instant itself; here we
    // just close the victim's open span so it pairs up in export.
    if (auto *t = ctx_.sim.tracer())
        t->endTx(ctx_.nodeId,
                 static_cast<std::int64_t>(TxStatus::Reset));
    onPowerLost();
    std::deque<PendingTx> dead;
    dead.swap(txQueue_);
    for (PendingTx &tx : dead) {
        ++stats_.messagesSent;
        ++stats_.messagesFailed;
        if (!tx.cb)
            continue;
        TxResult result;
        result.status = TxStatus::Reset;
        result.bytesSent = 0;
        result.arbitrationRetries = tx.retries;
        result.completedAt = ctx_.sim.now();
        auto cb = std::move(tx.cb);
        ctx_.sim.schedule(0, [cb, result] { cb(result); });
    }
}

void
BusController::onClkEdge(bool rising)
{
    if (!ctx_.busDomain.active())
        return;
    beginTransactionIfNeeded();
    if (phase_ == Phase::Idle)
        return;

    stepLayerIfNeeded();

    if (phase_ == Phase::Control) {
        if (rising)
            handleControlRising(ctx_.sleepCtl.risingCount() -
                                controlBaseRising_);
        else
            handleControlFalling(ctx_.sleepCtl.fallingCount() -
                                 controlBaseFalling_);
        return;
    }
    if (phase_ == Phase::IntjWait)
        return; // Holding CLK (or aborted); wait for the interjection.

    if (rising)
        handleRising(ctx_.sleepCtl.risingCount());
    else
        handleFalling(ctx_.sleepCtl.fallingCount());
}

void
BusController::beginTransactionIfNeeded()
{
    if (phase_ != Phase::Idle || !ctx_.sleepCtl.transactionActive())
        return;
    phase_ = Phase::Active;
    role_ = Role::None;
    requestedThisTxn_ = txArmed_;
    wonArb_ = priorityDriven_ = wonPriority_ = backedOff_ = false;
    addressResolved_ = false;
    addrAccum_ = 0;
    addrBitsSeen_ = 0;
    addrBitsExpected_ = 8;
    rxBytes_.clear();
    rxBitBuffer_ = 0;
    rxBitsPending_ = 0;
    dataBitsSeen_ = dataBytesSeen_ = 0;
    iAmInterjector_ = interjectorEom_ = false;
    // A third-party interject() aimed at a transaction that ended
    // before the four-byte progress rule allowed it must die with
    // that transaction, not fire four bytes into the next one.
    wantInterject_ = false;
}

void
BusController::stepLayerIfNeeded()
{
    bool wanted = (role_ == Role::Rx) || ctx_.intCtl.pending();
    if (wanted && !ctx_.layerDomain.active())
        ctx_.layerDomain.step();
}

void
BusController::handleRising(std::uint32_t r)
{
    if (r == 1) {
        // Arbitration latch (Sec 4.3). The node at the ring break
        // always wins: normally the mediator host's member port,
        // or whichever node holds the mutable-priority break role.
        if (requestedThisTxn_) {
            bool at_break =
                ctx_.sysCfg.useNodeArbBreak
                    ? arbBreakSelf_
                    : ctx_.isMediatorHost;
            wonArb_ = at_break || ctx_.localData.value();
        }
        return;
    }
    if (r == 2) {
        // Priority-arbitration latch.
        if (wonArb_) {
            if (ctx_.localData.value()) {
                wonArb_ = false;
                backedOff_ = true;
            }
        } else if (priorityDriven_) {
            wonPriority_ = !ctx_.localData.value();
        }
        return;
    }
    if (r == 3) {
        // Reserved-cycle latch: roles are final.
        txArmed_ = false;
        if (wonArb_ || wonPriority_) {
            role_ = Role::Tx;
            if (wonPriority_)
                ++stats_.priorityWins;
            if (auto *t = ctx_.sim.tracer()) {
                const Message &m = txQueue_.front().msg;
                t->beginTx(ctx_.nodeId, m.dest.encoded(),
                           static_cast<std::int32_t>(m.payload.size()));
                t->record(trace::EventKind::ArbWin, ctx_.nodeId,
                          wonPriority_ ? 1 : 0);
            }
            prepareTxBits(txQueue_.front().msg);
        } else {
            role_ = Role::Fwd;
            if (requestedThisTxn_)
                requeueAfterArbLoss();
        }
        return;
    }

    // Address and data latches: wire cycle index from 0.
    std::uint32_t cycle = r - 4;
    if (role_ == Role::Tx) {
        ctx_.ledger.charge(ctx_.nodeId, power::EnergyCategory::Drive,
                           ctx_.energy.drivePerBit());
        if (r == 3 + txTotalCycles_)
            requestInterjection(true);
        return;
    }

    if (!addressResolved_) {
        latchAddressBit(ctx_.localData.value());
        (void)cycle;
    } else {
        latchDataBits();
    }
}

void
BusController::latchAddressBit(bool bit)
{
    addrAccum_ = (addrAccum_ << 1) | (bit ? 1 : 0);
    ++addrBitsSeen_;
    if (addrBitsSeen_ == 4 &&
        (addrAccum_ & 0xF) == kFullAddressMarker) {
        addrBitsExpected_ = 32;
    }
    if (addrBitsSeen_ < addrBitsExpected_)
        return;

    addressResolved_ = true;
    bool matched = false;
    if (addrBitsExpected_ == 8) {
        rxAddr_ = Address::decodeShort(
            static_cast<std::uint8_t>(addrAccum_ & 0xFF));
        if (rxAddr_.isBroadcast()) {
            matched = (cfg_.broadcastChannels >> rxAddr_.channel()) & 1;
        } else {
            matched = hasShortPrefix() &&
                      rxAddr_.shortPrefix() == shortPrefix_;
        }
    } else {
        rxAddr_ = Address::decodeFull(
            static_cast<std::uint32_t>(addrAccum_ & 0xFFFFFFFFu));
        matched = rxAddr_.fullPrefix() == cfg_.fullPrefix;
    }
    if (matched) {
        role_ = Role::Rx; // Layer wakeup begins on subsequent edges.
        if (auto *t = ctx_.sim.tracer())
            t->record(trace::EventKind::AddrPhase, ctx_.nodeId,
                      static_cast<std::int64_t>(addrAccum_),
                      static_cast<std::int32_t>(addrBitsExpected_));
    }
}

void
BusController::latchDataBits()
{
    int w = lanes();
    for (int l = 0; l < w; ++l) {
        if (phase_ != Phase::Active)
            break; // An RX abort mid-loop stops further latching.
        bool bit = sampleLane(l);
        ++dataBitsSeen_;
        if (role_ == Role::Rx) {
            ctx_.ledger.charge(ctx_.nodeId, power::EnergyCategory::Fifo,
                               ctx_.energy.fifoPerBit());
            rxBitBuffer_ = (rxBitBuffer_ << 1) | (bit ? 1 : 0);
            if (++rxBitsPending_ == 8) {
                commitRxByte(static_cast<std::uint8_t>(rxBitBuffer_ &
                                                       0xFF));
                rxBitBuffer_ = 0;
                rxBitsPending_ = 0;
            }
        } else if (dataBitsSeen_ % 8 == 0) {
            ++dataBytesSeen_;
            if (wantInterject_ && dataBytesSeen_ >= kMinProgressBytes)
                requestInterjection(false);
        }
    }
}

void
BusController::commitRxByte(std::uint8_t byte)
{
    ++dataBytesSeen_;
    if (rxBytes_.size() >= cfg_.rxBufferLimit) {
        // Buffer overrun: the receiver interjects mid-message to
        // report the error (Sec 4.8).
        ++stats_.rxAborts;
        requestInterjection(false);
        return;
    }
    rxBytes_.push_back(byte);
    if (rxBytes_.size() == 1) {
        if (auto *t = ctx_.sim.tracer())
            t->record(trace::EventKind::DataPhase, ctx_.nodeId, byte);
    }
}

void
BusController::prepareTxBits(const Message &msg)
{
    addrBits_.clear();
    payloadBits_.clear();

    int addr_bits = msg.dest.bitCount();
    std::uint32_t encoded = msg.dest.encoded();
    for (int i = addr_bits - 1; i >= 0; --i)
        addrBits_.push_back((encoded >> i) & 1);

    for (std::uint8_t byte : msg.payload)
        for (int i = 7; i >= 0; --i)
            payloadBits_.push_back((byte >> i) & 1);

    txTotalCycles_ = static_cast<std::uint32_t>(addrBits_.size()) +
                     dataCycles(payloadBits_.size(), lanes());
    txCyclesDriven_ = 0;
}

void
BusController::handleFalling(std::uint32_t f)
{
    if (f == 2) {
        if (requestedThisTxn_ && !wonArb_) {
            if (!txQueue_.empty() && txQueue_.front().msg.priority) {
                priorityDriven_ = true;
                if (!mediatorOwnsData())
                    ctx_.dataCtl.drive(true);
            } else if (!mediatorOwnsData()) {
                ctx_.dataCtl.forward(); // Lost: release the request.
            }
        }
        return;
    }
    if (f == 3) {
        // Roles finalize on the upcoming reserved latch (r == 3);
        // at this falling edge the winner is whoever holds the
        // arbitration or priority claim.
        bool is_winner = wonArb_ || wonPriority_;
        if (is_winner) {
            if (!mediatorOwnsData())
                ctx_.dataCtl.drive(true); // Reserved cycle: park high.
        } else if ((backedOff_ || priorityDriven_) &&
                   !mediatorOwnsData()) {
            ctx_.dataCtl.forward();
        }
        return;
    }
    if (f >= 4 && role_ == Role::Tx)
        driveTxCycle(f - 4);
}

void
BusController::driveTxCycle(std::uint32_t cycleIdx)
{
    if (mediatorOwnsData())
        return; // Watchdog fired; the mediator owns the line now.
    ++txCyclesDriven_;
    std::size_t addr_count = addrBits_.size();
    if (cycleIdx < addr_count) {
        driveLane(0, addrBits_[cycleIdx]);
        return;
    }
    std::uint32_t c = cycleIdx - static_cast<std::uint32_t>(addr_count);
    int w = lanes();
    for (int l = 0; l < w; ++l) {
        std::size_t p = static_cast<std::size_t>(c) * w + l;
        driveLane(l, p < payloadBits_.size() ? payloadBits_[p] != 0
                                             : true);
    }
}

void
BusController::driveLane(int lane, bool v)
{
    if (lane == 0)
        ctx_.dataCtl.drive(v);
    else
        ctx_.laneCtls[static_cast<std::size_t>(lane - 1)]->drive(v);
}

void
BusController::forwardLane(int lane)
{
    if (lane == 0)
        ctx_.dataCtl.forward();
    else
        ctx_.laneCtls[static_cast<std::size_t>(lane - 1)]->forward();
}

bool
BusController::sampleLane(int lane) const
{
    if (lane == 0)
        return ctx_.localData.value();
    return ctx_.laneIns[static_cast<std::size_t>(lane - 1)]->value();
}

void
BusController::requestInterjection(bool endOfMessage)
{
    if (phase_ != Phase::Active)
        return;
    iAmInterjector_ = true;
    interjectorEom_ = endOfMessage;
    wantInterject_ = false;
    phase_ = Phase::IntjWait;
    ++stats_.interjectionsRequested;
    if (auto *t = ctx_.sim.tracer())
        t->record(trace::EventKind::InterjectRequest, ctx_.nodeId,
                  endOfMessage ? 1 : 0);
    if (ctx_.isMediatorHost && ctx_.medLink &&
        ctx_.medLink->requestInterjection) {
        // The host member shares its CLK drive point with the
        // mediator; it requests the interjection on-chip.
        ctx_.medLink->requestInterjection();
        return;
    }
    // Stop forwarding CLK: hold it high. The mediator notices the
    // broken ring and generates the interjection (Fig 7, events 1-3).
    ctx_.clkCtl.drive(true);
}

void
BusController::onInterjectionDetected()
{
    // The detector lives in the always-on domain: it must catch
    // interjections even while the bus controller is power gated
    // (a gated controller woken mid-transaction enters directly in
    // control mode -- this is how null-transaction wakeups work).
    //
    // It also fires from *any* state, including idle: the
    // interjection is the protocol's reliable reset (Sec 4.9), and
    // the mediator's hung-bus rescue must resynchronize controllers
    // regardless of what they believe the bus is doing. Legal idle
    // activity produces at most two quiet DATA edges (a request fall
    // plus a null-transaction release), below the detector's
    // three-edge threshold, so this cannot false-trigger.
    if (phase_ == Phase::Control || phase_ == Phase::Idle) {
        // Entering from idle, or re-entering after a fault swallowed
        // our control edges: drop any stale role state.
        role_ = Role::None;
        rxBytes_.clear();
        iAmInterjector_ = false;
        interjectorEom_ = false;
    }
    phase_ = Phase::Control;
    controlBaseRising_ = ctx_.sleepCtl.risingCount();
    controlBaseFalling_ = ctx_.sleepCtl.fallingCount();
    ctlBit0_ = ctlBit1_ = false;
    if (role_ == Role::Tx || role_ == Role::Rx) {
        if (auto *t = ctx_.sim.tracer())
            t->record(trace::EventKind::ControlPhase, ctx_.nodeId,
                      iAmInterjector_ ? 1 : 0);
    }

    // Switch role (Fig 7): release all holds, resume forwarding.
    // The mediator can only own the single shared DATA wire (lane
    // 0); extra parallel lanes are always member-driven, so a
    // transmitting host must release them even while the mediator
    // drives DATA -- otherwise a stuck lane mux masks every later
    // message's bits on that lane.
    ctx_.clkCtl.forward();
    if (!mediatorOwnsData())
        forwardLane(0);
    for (int l = 1; l < lanes(); ++l)
        forwardLane(l);

    // Byte alignment (Sec 4.9): nodes observe varying edge counts
    // around an interjection; discard any partial byte.
    rxBitBuffer_ = 0;
    rxBitsPending_ = 0;
}

void
BusController::handleControlFalling(std::uint32_t fc)
{
    if (fc == 2) {
        // Control bit 0: the transmitter signals a complete message
        // by driving high (Fig 7 event 5). A transmitter that was
        // interrupted -- receiver abort, third party, or a fault --
        // drives low. When the mediator owns the line it is issuing
        // a general error and nobody else drives.
        if (role_ == Role::Tx && !mediatorOwnsData()) {
            ctx_.dataCtl.drive(iAmInterjector_ && interjectorEom_);
        }
        return;
    }
    if (fc == 3) {
        // Control bit 1: the ACK slot.
        if (role_ == Role::Tx && !mediatorOwnsData())
            ctx_.dataCtl.forward(); // Hand the line over.
        if (role_ == Role::Rx && ctlBit0_ && !rxAddr_.isBroadcast() &&
            !mediatorOwnsData()) {
            ctx_.dataCtl.drive(false); // ACK: drive low (Fig 7 ev. 6).
        }
        if (iAmInterjector_ && role_ != Role::Tx &&
            !mediatorOwnsData()) {
            // Deliberate abort by a receiver or third party: {0,1}.
            ctx_.dataCtl.drive(true);
        }
        return;
    }
    if (fc == 4) {
        if (!mediatorOwnsData())
            ctx_.dataCtl.forward(); // Everyone releases for idle.
        return;
    }
}

void
BusController::handleControlRising(std::uint32_t rc)
{
    if (rc == 2) {
        ctlBit0_ = ctx_.localData.value();
        return;
    }
    if (rc == 3) {
        ctlBit1_ = ctx_.localData.value();
        resolveOutcome();
        return;
    }
    if (rc == 4) {
        beginIdle();
        return;
    }
}

void
BusController::resolveOutcome()
{
    ControlCode code = controlCodeFromBits(ctlBit0_, ctlBit1_);

    if (role_ == Role::Tx && !txQueue_.empty()) {
        bool broadcast = txQueue_.front().msg.dest.isBroadcast();
        TxStatus status;
        switch (code) {
          case ControlCode::AckEom:
            status = broadcast ? TxStatus::Broadcast : TxStatus::Ack;
            break;
          case ControlCode::NakEom:
            status = broadcast ? TxStatus::Broadcast : TxStatus::Nak;
            break;
          case ControlCode::GeneralError:
            status = TxStatus::GeneralError;
            break;
          default:
            status = TxStatus::Interrupted;
            break;
        }
        completeCurrentTx(status);
    }

    if (role_ == Role::Rx && rxCb_) {
        bool end_of_message = ctlBit0_;
        ReceivedMessage rx;
        rx.dest = rxAddr_;
        rx.payload = rxBytes_;
        rx.interjected = !end_of_message;
        rx.receivedAt = ctx_.sim.now();
        // Clean end-of-message delivers; a deliberate abort ({0,1})
        // delivers the complete bytes so far, flagged; a general
        // error ({0,0}) is a bus reset and delivers nothing.
        bool abort_code = !ctlBit0_ && ctlBit1_;
        if (end_of_message || (abort_code && !rx.payload.empty())) {
            ++stats_.messagesReceived;
            stats_.bytesReceived += rx.payload.size();
            if (auto *t = ctx_.sim.tracer())
                t->record(trace::EventKind::Delivery, ctx_.nodeId,
                          static_cast<std::int64_t>(rx.payload.size()),
                          rx.interjected ? 1 : 0);
            // Delivery needs the layer active; if the message was so
            // short that wakeup edges ran out, the remaining rungs
            // complete on the idle edges (modelled as immediate).
            if (!ctx_.layerDomain.active())
                ctx_.layerDomain.wakeImmediately();
            auto cb = rxCb_;
            ctx_.sim.schedule(0, [cb, rx] { cb(rx); });
        }
    }

    // A pending local interrupt is serviced once the layer is up
    // (null transactions end with GeneralError; Sec 4.5, Fig 6).
    if (ctx_.intCtl.pending()) {
        if (!ctx_.layerDomain.active())
            ctx_.layerDomain.wakeImmediately();
        ctx_.intCtl.clearInterrupt();
        if (irqCb_) {
            auto cb = irqCb_;
            ctx_.sim.schedule(0, [cb] { cb(); });
        }
    }
}

void
BusController::completeCurrentTx(TxStatus status)
{
    PendingTx tx = std::move(txQueue_.front());
    txQueue_.pop_front();

    if (auto *t = ctx_.sim.tracer())
        t->endTx(ctx_.nodeId, static_cast<std::int64_t>(status),
                 static_cast<std::int32_t>(tx.msg.payload.size()));

    ++stats_.messagesSent;
    switch (status) {
      case TxStatus::Ack:
      case TxStatus::Broadcast:
        ++stats_.messagesAcked;
        stats_.bytesSent += tx.msg.payload.size();
        break;
      case TxStatus::Nak:
        ++stats_.messagesNaked;
        break;
      default:
        ++stats_.messagesFailed;
        break;
    }

    if (tx.cb) {
        TxResult result;
        result.status = status;
        if (status == TxStatus::Ack || status == TxStatus::Broadcast ||
            status == TxStatus::Nak) {
            result.bytesSent = tx.msg.payload.size();
        } else {
            // Interrupted mid-message: report completed payload
            // bytes actually put on the wire ("both TX and RX nodes
            // know how far through a message they were", Sec 7).
            std::size_t addr = addrBits_.size();
            std::size_t payload_cycles =
                txCyclesDriven_ > addr ? txCyclesDriven_ - addr : 0;
            result.bytesSent = std::min(
                tx.msg.payload.size(),
                payload_cycles * static_cast<std::size_t>(lanes()) /
                    8);
        }
        result.arbitrationRetries = tx.retries;
        result.completedAt = ctx_.sim.now();
        auto cb = std::move(tx.cb);
        ctx_.sim.schedule(0, [cb, result] { cb(result); });
    }
}

void
BusController::requeueAfterArbLoss()
{
    if (txQueue_.empty())
        return;
    ++stats_.arbitrationLosses;
    if (auto *t = ctx_.sim.tracer())
        t->record(trace::EventKind::ArbLoss, ctx_.nodeId);
    PendingTx &tx = txQueue_.front();
    ++tx.retries;
    if (tx.cancelOnArbLoss) {
        PendingTx cancelled = std::move(txQueue_.front());
        txQueue_.pop_front();
        if (cancelled.cb) {
            TxResult result;
            result.status = TxStatus::LostArbitration;
            result.bytesSent = 0;
            result.arbitrationRetries = cancelled.retries;
            result.completedAt = ctx_.sim.now();
            auto cb = std::move(cancelled.cb);
            ctx_.sim.schedule(0, [cb, result] { cb(result); });
        }
    }
    // Otherwise the message stays queued; the post-idle window
    // re-requests the bus.
}

void
BusController::beginIdle()
{
    phase_ = Phase::Idle;
    role_ = Role::None;
    iAmInterjector_ = false;
    interjectorEom_ = false;
    wantInterject_ = false;
    // A transaction killed before arbitration resolved leaves the
    // armed request dangling; clear it so the idle window re-arms.
    txArmed_ = false;
    ctx_.sleepCtl.noteIdle();

    // Give the ring one period to flush, then service the idle
    // window: pending interrupts, queued transmissions, power-down.
    sim::SimTime period =
        sim::periodFromHz(ctx_.sysCfg.busClockHz);
    ctx_.sim.schedule(period, [this] { postIdleWindow(); });
}

void
BusController::postIdleWindow()
{
    if (phase_ != Phase::Idle || ctx_.sleepCtl.transactionActive())
        return; // A new transaction already started.
    ctx_.intCtl.noteBusIdle();
    if (!txQueue_.empty()) {
        tryRequest();
        return;
    }
    if (cfg_.powerGated && !ctx_.intCtl.pending())
        ctx_.busDomain.shutdown();
}

} // namespace bus
} // namespace mbus
