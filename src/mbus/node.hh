/**
 * @file
 * An MBus node: one chip on the ring.
 *
 * Composes the module structure of Figure 8 with its three
 * hierarchical power domains:
 *
 *   - always-on ("green"): wire controllers, sleep controller,
 *     interrupt controller, interjection detector;
 *   - bus ("red"): the bus controller, powered during transactions;
 *   - layer ("blue"): the layer controller and local clock, powered
 *     only while the node is active.
 *
 * Non-power-gated nodes (NodeConfig::powerGated = false) model
 * power-oblivious chips: both gated domains stay permanently on, and
 * the node still interoperates seamlessly (Sec 3, Interoperability).
 */

#ifndef MBUS_BUS_NODE_HH
#define MBUS_BUS_NODE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mbus/bus_controller.hh"
#include "mbus/config.hh"
#include "mbus/interjection_detector.hh"
#include "mbus/interrupt_controller.hh"
#include "mbus/layer_controller.hh"
#include "mbus/message.hh"
#include "mbus/sleep_controller.hh"
#include "mbus/wire_controller.hh"
#include "power/domain.hh"
#include "power/energy.hh"
#include "power/switching.hh"
#include "sim/simulator.hh"
#include "wire/net.hh"

namespace mbus {
namespace bus {

/**
 * One chip on the MBus ring.
 *
 * The node itself is the edge listener for its local clock's
 * always-on combinational logic: per-edge forwarding energy and the
 * mutable-priority arbitration break (Sec 7).
 */
class Node : private wire::EdgeListener
{
  public:
    Node(sim::Simulator &sim, const SystemConfig &sysCfg, NodeConfig cfg,
         std::size_t id, power::EnergyLedger &ledger,
         const power::SwitchingEnergyModel &energy);

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    /**
     * Attach the node to its ring segments and build the controller
     * stack. Called once by MBusSystem::finalize().
     *
     * @param isMediatorHost True for the chip hosting the mediator.
     * @param medLink Shared host/mediator coordination flags (only
     *        for the host; nullptr otherwise).
     */
    void bind(wire::Net &clkIn, wire::Net &clkOut, wire::Net &dataIn,
              wire::Net &dataOut, std::vector<wire::Net *> laneIns,
              std::vector<wire::Net *> laneOuts, bool isMediatorHost,
              MediatorHostLink *medLink);

    // --- Application API -------------------------------------------------

    /** Queue a message for transmission. */
    void send(Message msg, SendCallback cb = nullptr);

    /** Queue a message that is dropped if arbitration is lost. */
    void sendCancelOnArbLoss(Message msg, SendCallback cb = nullptr);

    /** Assert the always-on interrupt port (Sec 4.5). */
    void assertInterrupt();

    /** Third-party interjection of the current transaction (Sec 7). */
    void interject() { busCtl_->interject(); }

    /**
     * Mutable-priority support (Sec 7): make this node's always-on
     * wire logic provide the arbitration ring break, so topological
     * priority starts just downstream of it. Requires
     * SystemConfig::useNodeArbBreak; at most one node may hold the
     * role at a time (MBusSystem::setArbBreakNode manages this).
     */
    void
    setArbBreakRole(bool enabled)
    {
        arbBreakRole_ = enabled;
        busCtl_->setArbBreakSelf(enabled);
    }
    bool arbBreakRole() const { return arbBreakRole_; }

    /** Gate the layer (and the bus controller if idle). */
    void sleep();

    /** Locally wake the layer (app decision, not bus-driven). */
    void wake();

    /** True while the layer domain is fully awake. */
    bool awake() const { return layerDomain_->active(); }

    // --- Identity / component access ----------------------------------

    std::size_t id() const { return id_; }
    const NodeConfig &config() const { return cfg_; }
    const std::string &name() const { return cfg_.name; }

    BusController &busController() { return *busCtl_; }
    const BusController &busController() const { return *busCtl_; }
    LayerController &layer() { return *layerCtl_; }
    InterruptController &interruptController() { return *intCtl_; }
    InterjectionDetector &interjectionDetector() { return *detector_; }
    SleepController &sleepController() { return *sleepCtl_; }

    power::PowerDomain &busDomain() { return *busDomain_; }
    power::PowerDomain &layerDomain() { return *layerDomain_; }

    WireController &clkWireController() { return *wcClk_; }
    WireController &dataWireController() { return *wcData_; }

    /** Extra parallel-lane wire controllers (lanes beyond DATA0). */
    std::size_t laneWireControllers() const { return wcLanes_.size(); }
    WireController &laneWireController(std::size_t lane)
    {
        return *wcLanes_.at(lane);
    }

    /** Assigned or static short prefix (0 if none). */
    std::uint8_t shortPrefix() const { return busCtl_->shortPrefix(); }

    /** This node's short unicast address for @p fuId. */
    Address address(std::uint8_t fuId) const;

    /** This node's full (32-bit) address for @p fuId. */
    Address
    fullAddress(std::uint8_t fuId) const
    {
        return Address::fullAddr(cfg_.fullPrefix, fuId);
    }

  private:
    void onNetEdge(wire::Net &net, bool value) override;
    void onEdges(wire::Net &net, wire::EdgeRun run) override;
    bool handlePreDispatch(const ReceivedMessage &rx);
    void onArbBreakEdge(bool rising);

    sim::Simulator &sim_;
    const SystemConfig &sysCfg_;
    NodeConfig cfg_;
    std::size_t id_;
    power::EnergyLedger &ledger_;
    const power::SwitchingEnergyModel &energy_;

    std::unique_ptr<power::PowerDomain> aonDomain_;
    std::unique_ptr<power::PowerDomain> busDomain_;
    std::unique_ptr<power::PowerDomain> layerDomain_;

    std::unique_ptr<WireController> wcClk_;
    std::unique_ptr<WireController> wcData_;
    std::vector<std::unique_ptr<WireController>> wcLanes_;
    std::unique_ptr<InterjectionDetector> detector_;
    std::unique_ptr<SleepController> sleepCtl_;
    std::unique_ptr<InterruptController> intCtl_;
    std::unique_ptr<BusController> busCtl_;
    std::unique_ptr<LayerController> layerCtl_;

    // Mutable-priority state (one bit of always-on wire logic).
    bool arbBreakRole_ = false;
    bool arbBreakDriving_ = false;
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_NODE_HH
