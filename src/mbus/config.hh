/**
 * @file
 * Configuration for an MBus system and for individual nodes.
 */

#ifndef MBUS_BUS_CONFIG_HH
#define MBUS_BUS_CONFIG_HH

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "mbus/protocol.hh"
#include "sim/types.hh"

namespace mbus {
namespace bus {

/** System-wide parameters (the mediator's knobs). */
struct SystemConfig
{
    /** Bus clock frequency. Run-time tunable 10 kHz .. 6.67 MHz in
     *  the paper's implementation; default 400 kHz (Sec 6.3.2). */
    double busClockHz = 400e3;

    /** Fault injection: multiplicative drift on the mediator tick
     *  (oscillator wander). Exactly 1.0 -- the IEEE-exact identity
     *  -- when no drift window is active, so the default changes no
     *  byte of any schedule. */
    double clockDriftFactor = 1.0;

    /** Node-to-node propagation delay (spec max 10 ns, Sec 6.1). */
    sim::SimTime hopDelay = 10 * sim::kNanosecond;

    /** Mediator self-start latency from the first DATA edge. */
    sim::SimTime mediatorWakeDelay = 0; // 0 -> one bus period.

    /** Watchdog limit on message payload length (Sec 7, >= 1 kB). */
    std::size_t maxMessageBytes = kMinMaxMessageBytes;

    /** Number of DATA lanes (1 = standard MBus; Sec 7 parallel MBus). */
    int dataLanes = 1;

    /**
     * Inter-chip wire capacitance per ring segment, farads. Negative
     * means "use the Sec 6.2 conservative model" (power::kWireCapF);
     * parameter sweeps set it explicitly to study longer wires.
     */
    double wireCapF = -1.0;

    /**
     * Extra round-trip latency beyond hopDelay * nodes, e.g. the ISR
     * response time of a bitbanged software member (Sec 6.6). The
     * mediator's ring-continuity checks and the safe-clock limit both
     * account for it.
     */
    sim::SimTime extraRingLatency = 0;

    /**
     * Batched edge delivery: coalesce rhythmic same-wire edge runs
     * (the forwarded CLK broadcast, the mediator's own tick and
     * ring-continuity checks) into single kernel edge-train events.
     * Deliveries, VCD bytes and all protocol semantics are identical
     * to the discrete path -- trains confirm edge-by-edge and split
     * on any glitch, interjection or retiming -- only the kernel
     * events/bit drops. Off switches every train path at once (A/B
     * equivalence testing, debugging).
     */
    bool edgeTrains = true;

    /** Maximum edges per net-level speculative train. */
    std::uint32_t trainMaxEdges = 32;

    /**
     * Chunked dispatch: deliver whole edge runs to provably
     * edge-count-driven listeners (energy taps, comb-energy charges)
     * in one virtual call each, mute subscriptions whose FSM ignores
     * the current mode's edges, and convert the interjection
     * detector's CLK reset to an epoch pull. Never changes
     * scheduling, delivery times, VCD bytes or any outcome stat --
     * only the listener virtual-call count drops. Off restores the
     * fully per-edge dispatch path (A/B testing).
     */
    bool chunkedDispatch = true;

    /** Half-period edges per mediator tick/ring-check train chunk. */
    std::uint32_t tickTrainEdges = 64;

    /**
     * Mutable topological priority (Sec 7 discussion): when true,
     * the arbitration ring break is provided by a designated member
     * node's always-on wire logic instead of the mediator, making
     * the priority order start just downstream of that node. The
     * paper notes this "would require adding state to the always-on
     * Wire Controller" -- modelled here as exactly one such flag.
     */
    bool useNodeArbBreak = false;
};

/** Per-node (per-chip) parameters. */
struct NodeConfig
{
    /** Diagnostic name ("processor", "sensor", ...). */
    std::string name;

    /** 20-bit globally unique chip-design prefix. */
    std::uint32_t fullPrefix = 0;

    /**
     * Optional static short prefix (1..14). Nodes without one stay
     * unaddressable by short address until enumeration assigns one.
     */
    std::optional<std::uint8_t> staticShortPrefix;

    /**
     * True for power-aware chips: the bus controller and layer
     * controller are power gated and woken by the bus. False models
     * a power-oblivious chip that keeps everything on (Sec 3
     * "Interoperability").
     */
    bool powerGated = true;

    /** Broadcast channels this node listens to (bit k = channel k). */
    std::uint16_t broadcastChannels =
        (1u << kChannelEnumerate) | (1u << kChannelConfig);

    /** RX buffer limit; exceeding it makes the receiver interject. */
    std::size_t rxBufferLimit = std::numeric_limits<std::size_t>::max();

    /** Number of DATA lanes this node supports (parallel MBus). */
    int dataLanes = 1;
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_CONFIG_HH
