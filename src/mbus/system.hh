/**
 * @file
 * MBusSystem: builds and operates a complete MBus ring.
 *
 * Owns the ring segments (Nets), the nodes, the mediator, the energy
 * ledger, and the live system configuration. Node 0 hosts the
 * mediator, mirroring the paper's systems where the mediator is a
 * block on the processor chip.
 */

#ifndef MBUS_BUS_SYSTEM_HH
#define MBUS_BUS_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mbus/config.hh"
#include "mbus/mediator.hh"
#include "mbus/message.hh"
#include "mbus/node.hh"
#include "power/energy.hh"
#include "power/switching.hh"
#include "sim/simulator.hh"
#include "sim/vcd.hh"

namespace mbus {
namespace bus {

/**
 * A complete MBus system: ring, nodes, mediator, energy accounting.
 */
class MBusSystem
{
  public:
    /**
     * @param sim The simulator this system lives in.
     * @param cfg System-wide parameters.
     */
    MBusSystem(sim::Simulator &sim, SystemConfig cfg = {});

    MBusSystem(const MBusSystem &) = delete;
    MBusSystem &operator=(const MBusSystem &) = delete;
    ~MBusSystem();

    /**
     * Add a chip to the ring (in ring order). The first node added
     * hosts the mediator. Must be called before finalize().
     */
    Node &addNode(NodeConfig cfg);

    /** Build segments, wire nodes, create the mediator. */
    void finalize();

    // --- Access -----------------------------------------------------

    std::size_t nodeCount() const { return nodes_.size(); }
    Node &node(std::size_t i) { return *nodes_.at(i); }
    const Node &node(std::size_t i) const { return *nodes_.at(i); }
    Node *nodeByName(const std::string &name);

    Mediator &mediator() { return *mediator_; }

    /** The energy ledger. Flushes any deferred batched edge runs
     *  first so readers always see complete totals. */
    power::EnergyLedger &
    ledger()
    {
        flushDeferredEdges();
        return ledger_;
    }
    const power::SwitchingEnergyModel &energy() const { return energy_; }
    SystemConfig &config() { return cfg_; }
    sim::Simulator &simulator() { return sim_; }

    /** CLK segment driven by node @p i. */
    wire::Net &clkSegment(std::size_t i) { return *clkSegs_.at(i); }
    /** DATA segment (lane 0) driven by node @p i. */
    wire::Net &dataSegment(std::size_t i) { return *dataSegs_.at(i); }
    /** Extra-lane DATA segment driven by node @p i. */
    wire::Net &laneSegment(int lane, std::size_t i);

    // --- Convenience operation -----------------------------------------

    /**
     * Send from @p fromNode and run the simulator until the send
     * completes (or @p timeout passes).
     *
     * @return the result, or std::nullopt on timeout.
     */
    std::optional<TxResult> sendAndWait(std::size_t fromNode, Message msg,
                                        sim::SimTime timeout =
                                            sim::kTimeForever);

    /** Run the simulator until the bus is idle everywhere. */
    bool runUntilIdle(sim::SimTime timeout = sim::kTimeForever);

    /**
     * Run-time enumeration (Sec 4.7): broadcast ENUMERATE commands
     * from @p enumeratorNode until no unassigned node replies.
     * The enumerator must already hold a short prefix.
     *
     * @return the number of prefixes assigned.
     */
    int enumerateAll(std::size_t enumeratorNode);

    /**
     * Broadcast a configuration message (channel 1) updating the
     * mediator's maximum message length (Sec 7).
     */
    void broadcastMaxMessageLength(std::size_t enumeratorNode,
                                   std::uint32_t bytes);

    /**
     * System-software bus rescue: drive a mediator interjection that
     * resets every bus controller, then wait for idle (Sec 4.9).
     *
     * @return true once the bus is idle again.
     */
    bool recoverBus(sim::SimTime timeout = sim::kSecond);

    /**
     * Mutable priority (Sec 7): assign the arbitration ring break to
     * node @p idx. Requires SystemConfig::useNodeArbBreak.
     */
    void setArbBreakNode(std::size_t idx);

    /**
     * The fair scheme sketched in Sec 7 (credited to Campbell and
     * Horowitz): rotate the arbitration break to the next node after
     * every transaction. Requires SystemConfig::useNodeArbBreak.
     */
    void enableRotatingPriority();

    /** Attach a trace recorder to every ring segment. */
    void attachTrace(sim::TraceRecorder &recorder);

    /**
     * Deliver all deferred (chunk-dispatched) edge runs now. Must be
     * called before reading the energy ledger or any batched-listener
     * state; dumpStats() and the backend stat getters do.
     */
    void flushDeferredEdges() const;

    /** Listener virtual calls across all ring segments (the metric
     *  chunked dispatch reduces); flushes deferred runs first. */
    std::uint64_t dispatchCalls() const;

    /**
     * Aggregate every controller's counters, the mediator stats, the
     * energy ledger, and leakage into one human-readable report.
     */
    void dumpStats(std::ostream &os) const;

    /** Idle leakage integrated over simulated time so far (J). */
    double idleLeakageJ() const;

    /** Theoretical max bus clock for this ring in our conservative
     *  timing model (data must settle within the latch half-period;
     *  see EXPERIMENTS.md for the relation to the paper's Fig 9). */
    double maxSafeClockHz() const;

  private:
    bool handleConfigBroadcast(const ReceivedMessage &rx);

    /** Switching-energy tap: one per ring segment, charging the
     *  driving chip for each transition (allocation-free fanout).
     *  Edge-count driven, so it rides the chunked onEdges path. */
    struct SegmentEnergyTap final : wire::EdgeListener
    {
        SegmentEnergyTap(MBusSystem &s, std::size_t n,
                         power::EnergyCategory c)
            : sys(&s), nodeId(n), category(c)
        {}

        void
        onNetEdge(wire::Net &, bool) override
        {
            sys->ledger_.charge(nodeId, category,
                                sys->energy_.segmentEdge());
        }

        void
        onEdges(wire::Net &, wire::EdgeRun run) override
        {
            // Charge per edge (not count * e): repeated addition of
            // the same constant keeps the ledger bit-identical to the
            // per-edge path whatever the flush grouping.
            const double e = sys->energy_.segmentEdge();
            for (std::uint64_t i = 0; i < run.count; ++i)
                sys->ledger_.charge(nodeId, category, e);
        }

        MBusSystem *sys;
        std::size_t nodeId;
        power::EnergyCategory category;
    };

    sim::Simulator &sim_;
    SystemConfig cfg_;
    power::EnergyLedger ledger_;
    power::SwitchingEnergyModel energy_;

    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<wire::Net>> clkSegs_;
    std::vector<std::unique_ptr<wire::Net>> dataSegs_;
    std::vector<std::vector<std::unique_ptr<wire::Net>>> laneSegs_;
    std::vector<std::unique_ptr<SegmentEnergyTap>> energyTaps_;
    std::unique_ptr<Mediator> mediator_;
    std::unique_ptr<MediatorHostLink> medLink_;
    bool finalized_ = false;

    // Enumeration bookkeeping.
    bool enumReplySeen_ = false;
    std::uint32_t lastEnumFullPrefix_ = 0;

    // Mutable-priority bookkeeping.
    std::size_t arbBreakIdx_ = 0;
    bool rotatingPriority_ = false;
};

/** Well-known config-channel command bytes. */
enum : std::uint8_t {
    kConfigCmdMaxLength = 0x01,
    kConfigCmdClockHz = 0x02,
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_SYSTEM_HH
