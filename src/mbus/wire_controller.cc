#include "mbus/wire_controller.hh"

namespace mbus {
namespace bus {

WireController::WireController(wire::Net &in, wire::Net &out)
    : in_(in), out_(out)
{
    in_.listen(wire::Edge::Any, *this);
}

void
WireController::onNetEdge(wire::Net &, bool value)
{
    onInput(value);
}

void
WireController::onInput(bool v)
{
    if (mode_ == Mode::Forward)
        out_.drive(v);
}

void
WireController::forward()
{
    mode_ = Mode::Forward;
    // Handoff: the output snaps to whatever the input holds now. If
    // that differs from the driven value this emits the drive-to-
    // forward glitch described in Figure 5.
    out_.drive(in_.value());
}

void
WireController::drive(bool v)
{
    mode_ = Mode::Drive;
    out_.drive(v);
}

} // namespace bus
} // namespace mbus
