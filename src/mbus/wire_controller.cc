#include "mbus/wire_controller.hh"

namespace mbus {
namespace bus {

WireController::WireController(wire::Net &in, wire::Net &out,
                               bool muteWhileDriving)
    : in_(in), out_(out), muteWhileDriving_(muteWhileDriving)
{
    in_.listen(wire::Edge::Any, *this);
}

void
WireController::onNetEdge(wire::Net &, bool value)
{
    onInput(value);
}

void
WireController::onInput(bool v)
{
    if (mode_ == Mode::Forward)
        out_.drive(v);
}

void
WireController::forward()
{
    mode_ = Mode::Forward;
    if (muted_) {
        in_.setListenerMuted(*this, false);
        muted_ = false;
    }
    // Handoff: the output snaps to whatever the input holds now. If
    // that differs from the driven value this emits the drive-to-
    // forward glitch described in Figure 5.
    out_.drive(in_.value());
}

void
WireController::drive(bool v)
{
    mode_ = Mode::Drive;
    if (muteWhileDriving_ && !muted_) {
        // Drive-mode input edges are pure no-ops (see onInput); skip
        // their virtual dispatch until the switch back to forwarding.
        in_.setListenerMuted(*this, true);
        muted_ = true;
    }
    out_.drive(v);
}

} // namespace bus
} // namespace mbus
