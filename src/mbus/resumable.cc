#include "mbus/resumable.hh"

#include "sim/logging.hh"

namespace mbus {
namespace bus {

namespace {

constexpr std::size_t kHeaderBytes = 8;

std::uint32_t
beWord(const std::vector<std::uint8_t> &bytes, std::size_t offset)
{
    return (std::uint32_t(bytes[offset]) << 24) |
           (std::uint32_t(bytes[offset + 1]) << 16) |
           (std::uint32_t(bytes[offset + 2]) << 8) |
           std::uint32_t(bytes[offset + 3]);
}

void
pushWord(std::vector<std::uint8_t> &bytes, std::uint32_t value)
{
    bytes.push_back(static_cast<std::uint8_t>(value >> 24));
    bytes.push_back(static_cast<std::uint8_t>(value >> 16));
    bytes.push_back(static_cast<std::uint8_t>(value >> 8));
    bytes.push_back(static_cast<std::uint8_t>(value));
}

} // namespace

void
ResumableSender::send(std::uint8_t destPrefix,
                      std::vector<std::uint8_t> data, DoneCallback done)
{
    destPrefix_ = destPrefix;
    data_ = std::move(data);
    done_ = std::move(done);
    attempts_ = 0;
    sendFrom(0);
}

void
ResumableSender::sendFrom(std::size_t offset)
{
    ++attempts_;
    Message msg;
    msg.dest = Address::shortAddr(destPrefix_, kFuResumable);
    msg.payload.reserve(kHeaderBytes + data_.size() - offset);
    pushWord(msg.payload, static_cast<std::uint32_t>(offset));
    pushWord(msg.payload, static_cast<std::uint32_t>(data_.size()));
    msg.payload.insert(msg.payload.end(),
                       data_.begin() +
                           static_cast<std::ptrdiff_t>(offset),
                       data_.end());

    node_.send(std::move(msg), [this, offset](const TxResult &r) {
        if (r.status == TxStatus::Ack) {
            if (done_)
                done_(true, attempts_);
            return;
        }
        if (attempts_ >= maxAttempts_ ||
            (r.status != TxStatus::Interrupted &&
             r.status != TxStatus::RxAbort)) {
            if (done_)
                done_(false, attempts_);
            return;
        }
        // Resume: bytesSent counts payload bytes on the wire, which
        // includes our header. Resume one byte early for safety --
        // offsets make the overlap idempotent.
        std::size_t sent_data = r.bytesSent > kHeaderBytes
                                    ? r.bytesSent - kHeaderBytes
                                    : 0;
        if (sent_data > 0)
            --sent_data;
        sendFrom(offset + sent_data);
    });
}

ResumableReceiver::ResumableReceiver(Node &node)
{
    node.layer().addPreDispatchHandler(
        [this](const ReceivedMessage &rx) { return onMessage(rx); });
}

bool
ResumableReceiver::onMessage(const ReceivedMessage &rx)
{
    if (rx.dest.isBroadcast() || rx.dest.fuId() != kFuResumable)
        return false;
    if (rx.payload.size() < kHeaderBytes)
        return true; // Malformed fragment of ours; swallow it.

    std::size_t offset = beWord(rx.payload, 0);
    std::size_t total = beWord(rx.payload, 4);
    if (total == 0 || offset > total) {
        sim::warn("resumable chunk with bad header ignored");
        return true;
    }
    if (buffer_.size() != total) {
        buffer_.assign(total, 0);
        have_.assign(total, false);
        received_ = 0;
    }
    ++chunks_;

    std::size_t count = rx.payload.size() - kHeaderBytes;
    for (std::size_t i = 0; i < count && offset + i < total; ++i) {
        std::size_t at = offset + i;
        if (!have_[at]) {
            have_[at] = true;
            ++received_;
        }
        buffer_[at] = rx.payload[kHeaderBytes + i];
    }

    if (received_ == total && onComplete_) {
        auto done = buffer_;
        buffer_.clear();
        have_.clear();
        received_ = 0;
        onComplete_(done);
    }
    return true;
}

} // namespace bus
} // namespace mbus
