/**
 * @file
 * The MBus mediator (Sec 4.2): clock generation and bus mediation.
 *
 * Every MBus system has exactly one mediator. It is the only
 * component that must self-start from a fully gated state: a falling
 * edge on its DATA input wakes it, and it begins toggling CLK. It
 * does not forward DATA during arbitration (creating the ring break
 * that makes arbitration topological), generates the interjection
 * sequence (toggling DATA while CLK is held high), signals general
 * errors, enforces the runaway-message watchdog (Sec 7), and returns
 * the bus to idle after every transaction.
 *
 * The mediator is hosted on one chip (the processor in the paper's
 * systems) and drives that chip's output wire controllers.
 */

#ifndef MBUS_BUS_MEDIATOR_HH
#define MBUS_BUS_MEDIATOR_HH

#include <cstdint>

#include "mbus/bus_controller.hh"
#include "mbus/config.hh"
#include "mbus/wire_controller.hh"
#include "power/energy.hh"
#include "power/switching.hh"
#include "sim/event_queue.hh"
#include "sim/simulator.hh"
#include "wire/net.hh"

namespace mbus {
namespace bus {

/** Mediator statistics. */
struct MediatorStats
{
    std::uint64_t transactions = 0;
    std::uint64_t interjections = 0;   ///< Ring-break interjections.
    std::uint64_t generalErrors = 0;   ///< No-winner null transactions.
    std::uint64_t watchdogKills = 0;   ///< Runaway messages terminated.
    std::uint64_t clockCycles = 0;     ///< Bus cycles generated.
};

/**
 * The mediator node function.
 */
class Mediator : private wire::EdgeListener
{
  public:
    struct Context
    {
        sim::Simulator &sim;
        SystemConfig &cfg; ///< Live system config (mutable: Sec 7).
        wire::Net &clkIn;  ///< Host chip CLK input (ring tail).
        wire::Net &dataIn; ///< Host chip DATA input (ring tail).
        WireController &clkCtl;  ///< Host chip CLK output mux.
        WireController &dataCtl; ///< Host chip DATA output mux.
        power::EnergyLedger &ledger;
        const power::SwitchingEnergyModel &energy;
        std::size_t nodeId = 0;   ///< Host node id (energy).
        std::size_t ringSize = 0; ///< Chips (= segments) in the ring.
        MediatorHostLink &link;
    };

    explicit Mediator(Context ctx);

    /** Arm the wakeup detector; call once after system wiring. */
    void arm();

    /** Live statistics. */
    const MediatorStats &stats() const { return stats_; }

    /** Watchdog limit (payload bytes); clamped to >= 1 kB minimum. */
    void setMaxMessageBytes(std::size_t bytes);
    std::size_t maxMessageBytes() const { return maxMessageBytes_; }

    /** True while no transaction is in flight. */
    bool asleep() const { return state_ == State::Asleep; }

    /**
     * On-chip interjection request from the host member controller
     * (which cannot break the CLK ring it shares with us).
     */
    void hostInterjectionRequest();

    /**
     * Rescue interjection (Sec 4.9: interjections are "used both for
     * extreme cases, such as rescuing a hung bus," ...). Generates a
     * full interjection + general-error control sequence that resets
     * every bus controller on the ring, from any mediator state.
     * Host system software invokes this when its watchdog concludes
     * the bus is wedged (e.g. after sustained stuck-at faults).
     */
    void forceInterjection();

    /** Bus clock period currently in use. */
    sim::SimTime period() const;

    /** Callback fired each time the bus returns to idle (used by
     *  rotating-priority policies, Sec 7). */
    void
    setOnIdle(std::function<void()> fn)
    {
        onIdle_ = std::move(fn);
    }

  private:
    enum class State : std::uint8_t {
        Asleep,       ///< Fully gated; DATA-fall detector armed.
        WakePending,  ///< Self-start delay running.
        Clocking,     ///< Normal clock generation (arb/addr/data).
        Interjecting, ///< CLK parked high, toggling DATA.
        Control,      ///< Clocking the control cycles.
    };

    /** Why the current interjection was generated. */
    enum class InterjectReason : std::uint8_t {
        RingBreak, ///< A node stopped forwarding CLK (EoM / abort).
        NoWinner,  ///< Null transaction: nobody won arbitration.
        Watchdog,  ///< Message exceeded the maximum length.
        Rescue,    ///< Host-requested bus rescue.
    };

    void onNetEdge(wire::Net &net, bool value) override;
    void onDataFall();
    void startClocking();
    void driveClockEdge();
    void afterRisingEdge(std::uint32_t r);
    void watchdogLatch();
    void scheduleRingCheck(bool expected);

    // --- Edge-train clock generation (SystemConfig::edgeTrains) ----
    //
    // With trains on, the per-half-period self-reschedule chain and
    // the one-closure-per-edge ring checks become two kernel edge
    // trains per chunk of tickTrainEdges edges: a self tick train
    // delivering counted clock edges to onTrainTick(), and a
    // ring-check train delivering alternating expected levels to
    // onRingCheck() one ring flush after each edge. Per-edge protocol
    // work (watchdog sampling, arbitration handover, interjection
    // entry) is unchanged; both trains are cancelled wherever the
    // discrete path bumped checkEpoch_.

    /** True when this system runs the train-based clock path. */
    bool useTrains() const;

    /** One clock edge: drive, count, per-edge protocol work. */
    void onTickEdge(bool level);

    /** Tick-train delivery: onTickEdge plus chunk refill. */
    void onTrainTick(bool level);

    /** Ring-continuity check (train flavor of scheduleRingCheck). */
    void onRingCheck(bool expected);

    /** Arm the next tick + ring-check train chunk from "now". */
    void armTickTrain();

    /** Ring flush latency: when a driven edge must be back at clkIn. */
    sim::SimTime ringCheckDelay() const;

    struct TickSink final : sim::EdgeSink
    {
        Mediator *med = nullptr;
        void onEdge(bool value) override { med->onTrainTick(value); }
    };

    struct CheckSink final : sim::EdgeSink
    {
        Mediator *med = nullptr;
        void onEdge(bool value) override { med->onRingCheck(value); }
    };
    void beginInterjection(InterjectReason reason);
    void interjectionToggle();
    void beginControl();
    void driveControlEdge();
    void finishTransaction();

    /** True when this interjection carries a general-error code. */
    bool
    generalError() const
    {
        return reason_ != InterjectReason::RingBreak;
    }

    Context ctx_;
    State state_ = State::Asleep;
    bool armed_ = false;

    // Clock generation.
    bool clkLevel_ = true;
    std::uint32_t rising_ = 0;
    std::uint32_t falling_ = 0;
    sim::EventHandle clockEvent_;
    std::uint64_t checkEpoch_ = 0;

    // Train-based clock generation.
    TickSink tickSink_;
    CheckSink checkSink_;
    sim::EventHandle checkEvent_;
    std::uint32_t tickEdgesLeft_ = 0;
    sim::SimTime armedHalfPeriod_ = 0;

    // Arbitration-phase DATA ownership.
    bool medDrivingData_ = false;

    // Watchdog address/byte tracking.
    int addrBitsSeen_ = 0;
    int addrBitsExpected_ = 8;
    std::uint64_t addrAccum_ = 0;
    std::uint64_t dataCyclesSeen_ = 0;

    // Interjection.
    InterjectReason reason_ = InterjectReason::RingBreak;
    int togglesDriven_ = 0;
    std::uint64_t dataInEdgesDuringIntj_ = 0;

    // Control.
    std::uint32_t ctlRising_ = 0;
    std::uint32_t ctlFalling_ = 0;
    bool ctlBit0_ = false;
    bool ctlBit1_ = false;

    std::size_t maxMessageBytes_ = kMinMaxMessageBytes;
    std::function<void()> onIdle_;
    MediatorStats stats_;
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_MEDIATOR_HH
