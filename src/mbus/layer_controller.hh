/**
 * @file
 * The generic layer controller (Figure 8).
 *
 * "The generic layer controller provides a simple register/memory
 * interface for a node, but its design is not specific to MBus."
 *
 * Functional unit conventions (our documented mapping; the paper
 * leaves FU semantics to each chip):
 *
 *   FU 0  register write   payload = { reg_addr, d[23:16], d[15:8],
 *                          d[7:0] } repeated
 *   FU 1  memory write     payload = 4-byte big-endian word address
 *                          followed by 4-byte data words
 *   FU 2  memory read      payload = { addr[4], len_words[4],
 *                          reply_addr_byte } -- the layer streams the
 *                          requested words back as a memory-write
 *                          message to the reply address
 *   FU 7  mailbox          payload handed to the application callback
 *
 * Broadcast channel 0 carries enumeration (handled by the node),
 * channel 1 carries bus configuration, channels >= 2 are delivered to
 * the application's broadcast handler.
 */

#ifndef MBUS_BUS_LAYER_CONTROLLER_HH
#define MBUS_BUS_LAYER_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mbus/message.hh"
#include "power/domain.hh"
#include "sim/simulator.hh"

namespace mbus {
namespace bus {

class BusController;

/** Well-known functional unit ids used by the generic layer. */
enum : std::uint8_t {
    kFuRegisterWrite = 0,
    kFuMemoryWrite = 1,
    kFuMemoryRead = 2,
    kFuMailbox = 7,
};

/**
 * Generic register-file + memory layer behind an MBus frontend.
 */
class LayerController
{
  public:
    /** Application handler for mailbox messages. */
    using MailboxHandler = std::function<void(const ReceivedMessage &)>;
    /** Application handler for broadcast messages (channel >= 2). */
    using BroadcastHandler =
        std::function<void(std::uint8_t channel, const ReceivedMessage &)>;

    LayerController(sim::Simulator &sim, BusController &bus,
                    power::PowerDomain &layerDomain);

    /** Entry point wired to the bus controller's receive callback. */
    void onReceive(const ReceivedMessage &rx);

    // --- Register file (256 x 24-bit) --------------------------------

    std::uint32_t readRegister(std::uint8_t addr) const;
    void writeRegister(std::uint8_t addr, std::uint32_t value24);

    // --- Word-addressed memory (sparse) --------------------------------

    std::uint32_t readMemory(std::uint32_t wordAddr) const;
    void writeMemory(std::uint32_t wordAddr, std::uint32_t value);

    // --- Application hooks ----------------------------------------------

    void setMailboxHandler(MailboxHandler fn) { mailbox_ = std::move(fn); }
    void
    setBroadcastHandler(BroadcastHandler fn)
    {
        broadcast_ = std::move(fn);
    }

    /** Add a handler consulted before the generic dispatch (returns
     *  true if it consumed the message). Handlers run in registration
     *  order; used by enumeration and configuration. */
    void
    addPreDispatchHandler(
        std::function<bool(const ReceivedMessage &)> fn)
    {
        preDispatch_.push_back(std::move(fn));
    }

    /** Messages dispatched, by kind (for stats/tests). */
    std::uint64_t registerWrites() const { return registerWrites_; }
    std::uint64_t memoryWrites() const { return memoryWrites_; }
    std::uint64_t memoryReads() const { return memoryReads_; }
    std::uint64_t mailboxDeliveries() const { return mailboxDeliveries_; }

  private:
    void handleRegisterWrite(const std::vector<std::uint8_t> &payload);
    void handleMemoryWrite(const std::vector<std::uint8_t> &payload);
    void handleMemoryRead(const std::vector<std::uint8_t> &payload);

    sim::Simulator &sim_;
    BusController &bus_;
    power::PowerDomain &layerDomain_;

    std::array<std::uint32_t, 256> registers_{};
    std::map<std::uint32_t, std::uint32_t> memory_;

    MailboxHandler mailbox_;
    BroadcastHandler broadcast_;
    std::vector<std::function<bool(const ReceivedMessage &)>>
        preDispatch_;

    std::uint64_t registerWrites_ = 0;
    std::uint64_t memoryWrites_ = 0;
    std::uint64_t memoryReads_ = 0;
    std::uint64_t mailboxDeliveries_ = 0;
};

} // namespace bus
} // namespace mbus

#endif // MBUS_BUS_LAYER_CONTROLLER_HH
