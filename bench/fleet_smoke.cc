/**
 * @file
 * CI fleet smoke: the distributed-sweep contract, end to end.
 *
 * Legs (all on the shared faulty five-fabric grid):
 *  1. 3 processes x 2 threads vs 1 process x 1 thread: CSV, JSON,
 *     and fingerprint byte-identical. Runs fork+exec of the real
 *     fleet_runner when --runner is given (the CI shape), plain
 *     fork workers otherwise.
 *  2. Warm cache: an immediate re-sweep simulates zero cells and
 *     beats the cold run's wall clock.
 *  3. One-axis grid extension: only the new cells simulate.
 *  4. Harness-version salt bump: everything misses again.
 *  5. SIGKILL a worker mid-sweep: zero cells lost, bytes identical,
 *     and no cell appears in any journal twice.
 *  6. Coordinator abort + resume from the shard journals: the
 *     resumed merge is byte-identical and recovered cells were not
 *     re-simulated.
 *  7. 1 -> 4 process scaling, recorded to the bench trajectory.
 *
 * Artifacts: merged CSV (--out) and a cache/scaling stats JSON
 * (--cache-stats), both via the crash-safe writer. Exits non-zero on
 * any broken leg, so CI fails the PR.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "bench/bench_util.hh"
#include "fleet/fleet.hh"
#include "sim/fsio.hh"
#include "sweep/sweep.hh"

using namespace mbus;

namespace {

int gFailures = 0;

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++gFailures;
}

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Recreate @p dir empty (remove regular files one level deep). */
void
freshDir(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (struct dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name == "." || name == "..")
                continue;
            ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::mkdir(dir.c_str(), 0777);
}

std::string
csvOf(const sweep::SweepResult &r)
{
    std::ostringstream os;
    r.writeCsv(os);
    return os.str();
}

std::string
jsonOf(const sweep::SweepResult &r)
{
    std::ostringstream os;
    r.writeJson(os);
    return os.str();
}

/** Collect every journaled cell index under @p dir; duplicates
 *  across shard files land in @p dupes. */
std::set<std::uint64_t>
journaledIndices(const std::string &dir, std::size_t &dupes)
{
    std::set<std::uint64_t> seen;
    dupes = 0;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return seen;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.rfind("shard_", 0) != 0 ||
            name.size() < 9 ||
            name.compare(name.size() - 8, 8, ".journal") != 0)
            continue;
        std::ifstream in(dir + "/" + name);
        std::string line;
        while (std::getline(in, line)) {
            if (line.rfind("cell|", 0) != 0)
                continue;
            std::uint64_t idx =
                std::strtoull(line.c_str() + 5, nullptr, 10);
            if (!seen.insert(idx).second)
                ++dupes;
        }
    }
    ::closedir(d);
    return seen;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out = "fleet_smoke.csv";
    const char *cacheStatsOut = "fleet_cache_stats.json";
    std::string runner;
    std::string benchOut;
    std::size_t cells = 25;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
        else if (std::strcmp(argv[i], "--cache-stats") == 0)
            cacheStatsOut = argv[i + 1];
        else if (std::strcmp(argv[i], "--runner") == 0)
            runner = argv[i + 1];
        else if (std::strcmp(argv[i], "--bench") == 0)
            benchOut = argv[i + 1];
        else if (std::strcmp(argv[i], "--cells") == 0)
            cells = std::strtoull(argv[i + 1], nullptr, 10);
    }

    benchutil::banner(
        "Fleet smoke: multi-process byte identity, kill/resume, "
        "content-addressed cache",
        "distributed sweep fleet self-check (CI gate)");

    std::vector<sweep::ScenarioSpec> grid =
        benchutil::faultyFiveFabricGrid(cells);

    const std::string cacheDir = "fleet_smoke_cache";
    const std::string ckptIdentity = "fleet_smoke_ckpt_identity";
    const std::string ckptKill = "fleet_smoke_ckpt_kill";
    const std::string ckptResume = "fleet_smoke_ckpt_resume";
    freshDir(cacheDir);
    freshDir(ckptIdentity);
    freshDir(ckptKill);
    freshDir(ckptResume);

    // --- Leg 0: the 1-process x 1-thread truth -----------------------
    benchutil::section("solo baseline (1 process x 1 thread)");
    sweep::SweepConfig soloCfg;
    soloCfg.threads = 1;
    double t0 = now();
    sweep::SweepResult solo = sweep::SweepDriver(soloCfg).run(grid);
    double soloWall = now() - t0;
    const std::string soloCsv = csvOf(solo);
    const std::string soloJson = jsonOf(solo);
    std::printf("  %zu cells, %.3f s, fingerprint=%016llx\n",
                solo.size(), soloWall,
                static_cast<unsigned long long>(solo.fingerprint()));

    // --- Leg 1: 3 processes x 2 threads, byte identity ---------------
    benchutil::section(runner.empty()
                           ? "fleet 3x2 (fork workers), cold cache"
                           : "fleet 3x2 (exec fleet_runner), cold "
                             "cache");
    fleet::FleetConfig identityCfg;
    identityCfg.workers = 3;
    identityCfg.threadsPerWorker = 2;
    identityCfg.cacheDir = cacheDir;
    identityCfg.checkpointDir = ckptIdentity;
    identityCfg.workerExe = runner;
    t0 = now();
    fleet::FleetResult cold = fleet::runFleet(grid, identityCfg);
    double coldWall = now() - t0;
    check(cold.complete, "all cells merged");
    check(csvOf(cold.result) == soloCsv, "CSV byte-identical to solo");
    check(jsonOf(cold.result) == soloJson,
          "JSON byte-identical to solo");
    check(cold.result.fingerprint() == solo.fingerprint(),
          "fingerprints equal");
    check(cold.stats.cacheHits == 0 &&
              cold.stats.cacheMisses == cells &&
              cold.stats.cellsSimulated == cells,
          "cold cache: every cell simulated");
    std::printf("  %.3f s, stolen=%llu, spawned=%llu\n", coldWall,
                static_cast<unsigned long long>(cold.stats.cellsStolen),
                static_cast<unsigned long long>(
                    cold.stats.workersSpawned));

    // --- Leg 2: warm cache -------------------------------------------
    benchutil::section("warm cache re-sweep");
    fleet::FleetConfig warmCfg = identityCfg;
    warmCfg.checkpointDir.clear(); // The cache alone must carry it.
    t0 = now();
    fleet::FleetResult warm = fleet::runFleet(grid, warmCfg);
    double warmWall = now() - t0;
    check(warm.complete, "all cells merged");
    check(csvOf(warm.result) == soloCsv,
          "cache-served CSV byte-identical");
    check(warm.stats.cacheHits == cells &&
              warm.stats.cellsSimulated == 0,
          "warm cache: zero cells simulated");
    check(warmWall < coldWall, "warm run beats cold wall clock");
    std::printf("  %.3f s vs %.3f s cold (%.1fx)\n", warmWall,
                coldWall, coldWall / std::max(warmWall, 1e-9));

    // --- Leg 3: one-axis extension simulates only new cells ----------
    benchutil::section("one-axis grid extension");
    std::vector<sweep::ScenarioSpec> grown =
        benchutil::faultyFiveFabricGrid(cells + 5);
    fleet::FleetResult grownRun = fleet::runFleet(grown, warmCfg);
    check(grownRun.complete, "all cells merged");
    check(grownRun.stats.cacheHits == cells &&
              grownRun.stats.cellsSimulated == 5,
          "extension: exactly the 5 new cells simulated");

    // --- Leg 4: harness-version salt bump invalidates ----------------
    benchutil::section("harness-version salt bump");
    fleet::FleetConfig saltCfg = warmCfg;
    saltCfg.cacheSalt = fleet::kHarnessVersionSalt + 1;
    fleet::FleetResult salted = fleet::runFleet(grid, saltCfg);
    check(salted.complete, "all cells merged");
    check(salted.stats.cacheHits == 0 &&
              salted.stats.cellsSimulated == cells,
          "salt bump: every cell re-simulated");

    // --- Leg 5: SIGKILL a worker mid-sweep ---------------------------
    benchutil::section("worker SIGKILL mid-sweep");
    fleet::FleetConfig killCfg;
    killCfg.workers = 2;
    killCfg.threadsPerWorker = 1;
    killCfg.checkpointDir = ckptKill; // No cache: force simulation.
    long victim = -1;
    bool killed = false;
    std::uint64_t merges = 0;
    killCfg.onWorkerSpawn = [&](unsigned id, long pid) {
        if (id == 0)
            victim = pid;
    };
    killCfg.onCellDone = [&](std::uint64_t) {
        if (++merges == 4 && victim > 0 && !killed) {
            killed = true;
            ::kill(static_cast<pid_t>(victim), SIGKILL);
        }
    };
    fleet::FleetResult survived = fleet::runFleet(grid, killCfg);
    check(killed, "a worker was SIGKILLed mid-sweep");
    check(survived.stats.workerDeaths >= 1, "the death was observed");
    check(survived.complete, "zero cells lost");
    check(csvOf(survived.result) == soloCsv,
          "post-kill CSV byte-identical");
    std::size_t dupes = 0;
    std::set<std::uint64_t> journaled =
        journaledIndices(ckptKill, dupes);
    check(dupes == 0, "no cell journaled twice");
    check(journaled.size() == cells, "every cell journaled once");

    // --- Leg 6: coordinator abort + resume ---------------------------
    benchutil::section("coordinator abort + journal resume");
    fleet::FleetConfig abortCfg;
    abortCfg.workers = 2;
    abortCfg.threadsPerWorker = 1;
    abortCfg.checkpointDir = ckptResume;
    abortCfg.stopAfterCells = 6;
    fleet::FleetResult aborted = fleet::runFleet(grid, abortCfg);
    check(aborted.stats.aborted && !aborted.complete,
          "first run aborted mid-sweep");
    fleet::FleetConfig resumeCfg = abortCfg;
    resumeCfg.stopAfterCells = 0;
    fleet::FleetResult resumed = fleet::runFleet(grid, resumeCfg);
    check(resumed.complete, "resume merged every cell");
    check(resumed.stats.cellsFromJournal >= 6,
          "recovered cells came from journals, not re-simulation");
    check(csvOf(resumed.result) == soloCsv &&
              jsonOf(resumed.result) == soloJson &&
              resumed.result.fingerprint() == solo.fingerprint(),
          "resumed merge byte-identical to uninterrupted solo");
    dupes = 0;
    journaled = journaledIndices(ckptResume, dupes);
    check(dupes == 0, "no cell journaled twice across abort+resume");
    check(journaled.size() == cells, "every cell journaled once");

    // --- Leg 7: 1 -> 4 process scaling -------------------------------
    benchutil::section("1 -> 4 process scaling (cells/s)");
    fleet::FleetConfig one;
    one.workers = 1;
    one.threadsPerWorker = 1;
    t0 = now();
    fleet::FleetResult r1 = fleet::runFleet(grid, one);
    double wall1 = now() - t0;
    fleet::FleetConfig four = one;
    four.workers = 4;
    t0 = now();
    fleet::FleetResult r4 = fleet::runFleet(grid, four);
    double wall4 = now() - t0;
    check(r1.complete && r4.complete, "both scaling runs merged");
    check(csvOf(r4.result) == soloCsv,
          "4-process CSV byte-identical");
    double rate1 = static_cast<double>(cells) / wall1;
    double rate4 = static_cast<double>(cells) / wall4;
    double scaling = rate4 / rate1;
    std::printf("  1p: %.1f cells/s   4p: %.1f cells/s   %.2fx\n",
                rate1, rate4, scaling);
    unsigned cores = std::thread::hardware_concurrency();
    if (cores >= 4)
        check(scaling >= 2.0, "scaling >= 2x on a >=4-core host");
    else
        std::printf("  [skip] scaling gate (%u cores)\n", cores);

    // --- Artifacts ---------------------------------------------------
    bool wroteCsv = cold.result.writeCsvFile(out, true);
    std::printf("%s %s (atomic rename)\n",
                wroteCsv ? "wrote" : "FAILED TO WRITE", out);
    if (!wroteCsv)
        ++gFailures;

    std::ostringstream cs;
    cs << "{\n  \"cells\": " << cells << ",\n"
       << "  \"cold\": {\"hits\": " << cold.stats.cacheHits
       << ", \"misses\": " << cold.stats.cacheMisses
       << ", \"wall_s\": " << sim::formatDouble(coldWall) << "},\n"
       << "  \"warm\": {\"hits\": " << warm.stats.cacheHits
       << ", \"misses\": " << warm.stats.cacheMisses
       << ", \"wall_s\": " << sim::formatDouble(warmWall) << "},\n"
       << "  \"extension\": {\"hits\": " << grownRun.stats.cacheHits
       << ", \"simulated\": " << grownRun.stats.cellsSimulated
       << "},\n"
       << "  \"salt_bump\": {\"hits\": " << salted.stats.cacheHits
       << ", \"simulated\": " << salted.stats.cellsSimulated
       << "},\n"
       << "  \"kill\": {\"worker_deaths\": "
       << survived.stats.workerDeaths
       << ", \"journal_recovered\": "
       << survived.stats.cellsFromJournal << "},\n"
       << "  \"resume\": {\"journal_recovered\": "
       << resumed.stats.cellsFromJournal << "},\n"
       << "  \"scaling\": {\"cells_per_s_1p\": "
       << sim::formatDouble(rate1) << ", \"cells_per_s_4p\": "
       << sim::formatDouble(rate4) << ", \"ratio\": "
       << sim::formatDouble(scaling) << "}\n}\n";
    bool wroteStats = sim::atomicWriteFile(cacheStatsOut, cs.str());
    std::printf("%s %s (atomic rename)\n",
                wroteStats ? "wrote" : "FAILED TO WRITE",
                cacheStatsOut);
    if (!wroteStats)
        ++gFailures;

    if (!benchOut.empty()) {
        std::ostringstream entry;
        entry << "{\"pr\": 10, \"mode\": \"fleet_smoke\", \"cells\": "
              << cells << ", \"cells_per_s_1p\": "
              << sim::formatDouble(rate1)
              << ", \"cells_per_s_4p\": " << sim::formatDouble(rate4)
              << ", \"scaling_x\": " << sim::formatDouble(scaling)
              << ", \"warm_cache_speedup_x\": "
              << sim::formatDouble(coldWall /
                                   std::max(warmWall, 1e-9))
              << "}";
        bool appended =
            benchutil::appendRunEntry(benchOut, entry.str());
        std::printf("%s run entry -> %s\n",
                    appended ? "appended" : "FAILED TO APPEND",
                    benchOut.c_str());
        if (!appended)
            ++gFailures;
    }

    if (gFailures != 0) {
        std::printf("FLEET SMOKE FAILED (%d)\n", gFailures);
        return 1;
    }
    std::printf("FLEET SMOKE OK\n");
    return 0;
}
