/**
 * @file
 * CI smoke for the pluggable bus-backend layer: the canonical
 * sensing+imaging+storm mix swept across every backend
 * (hardware MBus, standard I2C, oracle I2C, bit-banged mixed ring)
 * in one SweepDriver grid, run on 2 worker threads and re-run
 * single-threaded, with end-to-end byte identity (CSV + JSON +
 * fingerprint) and per-cell health asserted. Exits non-zero on
 * divergence, wedge, corruption, or a silent backend (no samples
 * delivered), so CI fails the PR -- the backend twin of sweep_smoke
 * and workload_smoke.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    const char *out = "backend_smoke.csv";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];

    benchutil::banner(
        "Backend smoke: one workload, every fabric, 2-thread vs "
        "1-thread byte identity",
        "pluggable bus-backend layer self-check (CI gate)");

    // One WorkloadSpec, four fabrics; quiet and stormy variants.
    std::vector<sweep::ScenarioSpec> grid;
    for (backend::BackendKind kind :
         {backend::BackendKind::Mbus, backend::BackendKind::I2cStd,
          backend::BackendKind::I2cOracle,
          backend::BackendKind::Bitbang}) {
        for (double storm : {0.0, 0.15}) {
            sweep::ScenarioSpec s = benchutil::canonicalWorkloadCell(
                /*nodes=*/3, /*clockHz=*/400e3, storm, /*smoke=*/true);
            s.workload.durationS = 6.0;
            s.backend = kind;
            s.name = std::string(backend::backendKindName(kind)) +
                     (storm > 0 ? "_storm" : "_quiet");
            grid.push_back(std::move(s));
        }
    }

    sweep::SweepConfig sharded;
    sharded.threads = 2;
    sweep::SweepConfig solo;
    solo.threads = 1;
    sweep::SweepResult a = sweep::SweepDriver(sharded).run(grid);
    sweep::SweepResult b = sweep::SweepDriver(solo).run(grid);

    std::ostringstream csvA, csvB, jsonA, jsonB;
    a.writeCsv(csvA);
    b.writeCsv(csvB);
    a.writeJson(jsonA);
    b.writeJson(jsonB);
    bool identical = csvA.str() == csvB.str() &&
                     jsonA.str() == jsonB.str() &&
                     a.fingerprint() == b.fingerprint();

    std::printf("%-18s %9s %9s %12s %12s %12s %10s\n", "cell",
                "samples", "missed", "e/sample[J]", "lat_p99[s]",
                "lifetime[d]", "wedged");
    bool healthy = true;
    for (const sweep::CellResult &c : a.cells()) {
        const sweep::ScenarioStats &s = c.stats;
        std::printf("%-18s %5d/%-3d %9d %12.3e %12.3e %12.1f %10s\n",
                    c.spec.name.c_str(), s.samplesDelivered,
                    s.samplesPlanned, s.missedDeadlines,
                    s.energyPerSampleJ, s.latencyP99S, s.lifetimeDays,
                    s.wedged ? "WEDGED" : "no");
        if (s.wedged || s.payloadMismatches != 0 ||
            s.samplesDelivered == 0)
            healthy = false;
        if (s.planned != s.acked + s.naked + s.broadcasts +
                             s.interrupted + s.rxAborts + s.failed)
            healthy = false;
    }
    std::printf("fingerprint=%016llx (2 threads) vs %016llx (1 "
                "thread): %s\n",
                static_cast<unsigned long long>(a.fingerprint()),
                static_cast<unsigned long long>(b.fingerprint()),
                identical ? "IDENTICAL" : "DIVERGED");
    std::printf("wall: %.3f s across %zu cells (2 threads)\n",
                a.totalWallSeconds(), a.size());

    std::ofstream os(out);
    a.writeCsv(os, /*includeWallTime=*/true);
    std::printf("wrote %s\n", out);

    if (!identical || !healthy) {
        std::printf("BACKEND SMOKE FAILED\n");
        return 1;
    }
    std::printf("BACKEND SMOKE OK\n");
    return 0;
}
