/**
 * @file
 * Regenerates the Section 6.3.1 "sense and send" microbenchmark:
 * the three-chip temperature system, direct sensor->radio addressing
 * vs relaying through the processor, and the battery-lifetime
 * arithmetic. Runs both flows through the edge-level simulator and
 * prints them next to the closed-form numbers.
 */

#include <cstdio>

#include "analysis/lifetime.hh"
#include "bench/bench_util.hh"
#include "mbus/system.hh"
#include "power/constants.hh"

using namespace mbus;

namespace {

struct FlowEnergy
{
    double busJ;
    double cpuJ;
};

/** Run one request/response sense-and-send event; return energies. */
FlowEnergy
runFlow(bool direct)
{
    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    const char *names[3] = {"proc", "sensor", "radio"};
    for (int i = 0; i < 3; ++i) {
        bus::NodeConfig nc;
        nc.name = names[i];
        nc.fullPrefix = 0x800u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = i != 0;
        system.addNode(nc);
    }
    system.finalize();

    double cpu_j = 0.0;

    // Sensor firmware: on request, send the 8-byte reading either
    // directly to the radio or back to the processor.
    system.node(1).layer().setMailboxHandler(
        [&](const bus::ReceivedMessage &) {
            bus::Message reply;
            reply.dest = bus::Address::shortAddr(
                direct ? 3 : 1, bus::kFuMailbox);
            reply.payload = {0x12, 0x34, 0x56, 0x78,
                             0x9A, 0xBC, 0xDE, 0xF0};
            system.node(1).send(reply);
        });

    // Processor firmware (relay flow): copy the reading to the radio
    // at ~50 cycles x 20 pJ (Sec 6.3.1).
    int radio_rx = 0;
    system.node(0).layer().setMailboxHandler(
        [&](const bus::ReceivedMessage &rx) {
            cpu_j += power::kProcessorRelayCycles *
                     power::kProcessorEnergyPerCycleJ;
            bus::Message fwd;
            fwd.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
            fwd.payload = rx.payload;
            system.node(0).send(fwd);
        });
    system.node(2).layer().setMailboxHandler(
        [&](const bus::ReceivedMessage &) { ++radio_rx; });

    // The periodic request (4 bytes, Sec 6.3.1).
    bus::Message request;
    request.dest = bus::Address::shortAddr(2, bus::kFuMailbox);
    request.payload = {0x01, 0x00, 0x00,
                       static_cast<std::uint8_t>(direct ? 3 : 1)};
    system.sendAndWait(0, request, sim::kSecond);
    simulator.runUntil([&] { return radio_rx == 1; }, sim::kSecond);
    system.runUntilIdle(sim::kSecond);

    return FlowEnergy{system.ledger().total(), cpu_j};
}

} // namespace

int
main()
{
    benchutil::banner(
        "Sec 6.3.1 microbenchmark: Sense and Send",
        "Pannuto et al., ISCA'15, Sec 6.3.1 (temperature system)");

    analysis::SenseAndSendAnalysis a = analysis::analyzeSenseAndSend();

    benchutil::section("Closed form (paper arithmetic)");
    std::printf("8-byte message, 3 chips: (64+19) bits x (27.45 + "
                "22.71 + 17.55) pJ/bit = %.1f nJ (paper: 5.6)\n",
                a.directMessageJ * 1e9);
    std::printf("relay adds: bus x2 (+%.1f nJ) + 50 CPU cycles "
                "(+%.1f nJ) = %.1f nJ per event (~%.0f%% of the "
                "%.0f nJ event; paper: ~7%%)\n",
                a.directMessageJ * 1e9, a.relayCpuJ * 1e9,
                a.savedPerEventJ * 1e9, a.savedPercent,
                a.eventEnergyDirectJ * 1e9);
    std::printf("battery 2 uAh x 3.8 V = %.1f mJ; 15 s interval:\n",
                a.batteryJ * 1e3);
    std::printf("  direct: %.1f days   relayed: %.1f days   gain: "
                "%.0f hours (paper: 47.5 / 44.5 / 71)\n",
                a.lifetimeDirectDays, a.lifetimeRelayDays,
                a.lifetimeGainHours);

    benchutil::section("Edge-level simulation of both flows "
                       "(request + response, simulated scale)");
    FlowEnergy direct = runFlow(true);
    FlowEnergy relay = runFlow(false);
    double scale = power::kMeasuredOverheadFactor;
    std::printf("direct  sensor->radio: bus %.2f nJ (measured scale "
                "%.2f nJ), cpu 0 nJ\n", direct.busJ * 1e9,
                direct.busJ * scale * 1e9);
    std::printf("relayed sensor->proc->radio: bus %.2f nJ (measured "
                "scale %.2f nJ), cpu %.2f nJ\n", relay.busJ * 1e9,
                relay.busJ * scale * 1e9, relay.cpuJ * 1e9);
    double saved = (relay.busJ - direct.busJ) * scale + relay.cpuJ;
    std::printf("per-event saving from any-to-any addressing: %.2f "
                "nJ (paper: 6.6 nJ)\n", saved * 1e9);

    benchutil::section("Bus utilization (Sec 6.3.1)");
    double cycles = (19 + 32) + 2 * (19 + 64); // req + 2 legs worst.
    double util = cycles / 400e3 / 15.0 * 100.0;
    std::printf("request+response every 15 s at 400 kHz: %.4f%% "
                "(paper: 0.0022%%)\n", util);
    return 0;
}
