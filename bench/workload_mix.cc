/**
 * @file
 * workload_mix: the canonical application-mix sweep.
 *
 * Runs the sensing+imaging+storm mix (1 Hz duty-cycled sensor, 4 KB
 * imager burst every 30 s, mediator-targeted control traffic, a 10%
 * interjection-storm window) across a >= 20-cell SweepDriver grid
 * (ring size x bus clock x storm on/off x gating), prints per-actor
 * latency percentiles and energy per delivered sample, projects a
 * paper-style lifetime (analysis/lifetime, the abstract's 0.6 uAh
 * cell) and goodput efficiency (analysis/goodput), and appends an
 * events_per_bit/latency entry to BENCH_kernel.json's runs[]
 * history, so the application-path trajectory accumulates alongside
 * the kernel one.
 *
 * Usage: workload_mix [--smoke] [--out PATH] [--csv PATH]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/goodput.hh"
#include "analysis/lifetime.hh"
#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool progress = false;
    std::string outPath = "BENCH_kernel.json";
    std::string csvPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--progress") == 0)
            progress = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            outPath = argv[++i];
        else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
            csvPath = argv[++i];
    }

    benchutil::banner(
        "workload_mix: canonical sensing+imaging+storm application mix",
        "Sec 6.3 application claims (energy/sample, latency, "
        "lifetime) on realistic nanopower traffic");

    // 5 ring sizes x 2 clocks x {storm, quiet} = 20 cells.
    std::vector<sweep::ScenarioSpec> grid;
    for (int nodes : {3, 4, 5, 6, 8}) {
        for (double clock : {400e3, 1e6}) {
            for (double storm : {0.0, 0.10}) {
                sweep::ScenarioSpec s = benchutil::canonicalWorkloadCell(
                    nodes, clock, storm, smoke);
                s.name += storm > 0 ? "_storm" : "_quiet";
                s.name += clock > 500e3 ? "_1M" : "_400k";
                grid.push_back(std::move(s));
            }
        }
    }

    sweep::SweepConfig cfg;
    cfg.threads = smoke ? 2 : 0;
    if (progress)
        cfg.progress = sweep::stderrProgress();
    sweep::SweepResult result = sweep::SweepDriver(cfg).run(grid);

    benchutil::section("per-cell application outcomes");
    std::printf("%-18s %8s %8s %7s %10s %12s %12s\n", "cell",
                "samples", "missed", "intj", "events/bit",
                "lat_p95_s", "J/sample");
    double epbSum = 0, p95Max = 0, p99Max = 0;
    double sensorEnergySum = 0;
    int sensorEnergyCells = 0;
    bool healthy = true;
    for (const sweep::CellResult &c : result.cells()) {
        const sweep::ScenarioStats &s = c.stats;
        double cellP95 = 0, sensorEpj = 0;
        for (const workload::ActorStats &a : s.actorStats) {
            if (a.latencyP95S > cellP95)
                cellP95 = a.latencyP95S;
            if (a.latencyP99S > p99Max)
                p99Max = a.latencyP99S;
            if (a.name == "sensor" && a.energyPerSampleJ > 0) {
                sensorEpj = a.energyPerSampleJ;
                sensorEnergySum += a.energyPerSampleJ;
                ++sensorEnergyCells;
            }
        }
        if (cellP95 > p95Max)
            p95Max = cellP95;
        epbSum += s.eventsPerBit;
        std::printf("%-18s %4d/%-3d %8d %7d %10.3f %12.3g %12.3g\n",
                    c.spec.name.c_str(), s.samplesDelivered,
                    s.samplesPlanned, s.missedDeadlines,
                    s.stormInterjections, s.eventsPerBit, cellP95,
                    sensorEpj);
        bool cellHealthy =
            !s.wedged && s.payloadMismatches == 0 &&
            s.acked + s.naked + s.broadcasts + s.interrupted +
                    s.rxAborts + s.failed ==
                s.planned &&
            s.samplesDelivered > 0;
        if (!cellHealthy) {
            std::printf("  ^^ UNHEALTHY CELL\n");
            healthy = false;
        }
    }
    double meanEpb = epbSum / static_cast<double>(result.size());

    // --- Paper-style projections ------------------------------------
    benchutil::section(
        "projections (analysis/lifetime + analysis/goodput)");
    const sweep::CellResult &ref = result.cell(0);
    double activeS = sim::toSeconds(ref.stats.simTime);
    double totalJ = ref.stats.switchingJ + ref.stats.leakageJ;
    double days = analysis::projectedLifetimeDays(totalJ, activeS);
    std::printf("reference cell %s: %.3g J over %.1f s -> %.1f days "
                "on the 0.6 uAh cell\n",
                ref.spec.name.c_str(), totalJ, activeS, days);
    double modelBps = analysis::parallelGoodputBps(
        ref.spec.busClockHz, /*payloadBytes=*/128, /*lanes=*/1);
    std::printf("imager goodput vs back-to-back model: %.0f bps "
                "achieved burst-average vs %.0f bps model ceiling\n",
                ref.stats.goodputBps, modelBps);

    sweep::SweepAggregate agg = result.aggregate();
    std::printf("\naggregate: cells=%llu samples=%llu/%llu "
                "missed=%llu faults=%llu mean events/bit=%.3f "
                "lat p95 max=%.4g s\n",
                static_cast<unsigned long long>(agg.cells),
                static_cast<unsigned long long>(agg.samplesDelivered),
                static_cast<unsigned long long>(agg.samplesPlanned),
                static_cast<unsigned long long>(agg.missedDeadlines),
                static_cast<unsigned long long>(agg.faultsInjected),
                meanEpb, p95Max);

    if (!csvPath.empty()) {
        std::ofstream os(csvPath);
        result.writeCsv(os, /*includeWallTime=*/true);
        std::printf("wrote %s\n", csvPath.c_str());
    }

    // Append this run to the shared trajectory history.
    std::ostringstream entry;
    entry << "{\"mode\": \"workload_mix"
          << (smoke ? "_smoke" : "")
          << "\", \"cells\": " << result.size()
          << ", \"events_per_bit\": " << meanEpb
          << ", \"lat_p50_s\": " << agg.latencyP50S
          << ", \"lat_p95_s\": " << agg.latencyP95S
          << ", \"lat_p99_s\": " << agg.latencyP99S
          << ", \"samples\": " << agg.samplesDelivered
          << ", \"missed_deadlines\": " << agg.missedDeadlines
          << ", \"sensor_energy_per_sample_j\": "
          << (sensorEnergyCells > 0
                  ? sensorEnergySum / sensorEnergyCells
                  : 0)
          << ", \"lifetime_days_0p6uah\": " << days << "}";
    if (benchutil::appendRunEntry(outPath, entry.str()))
        std::printf("appended run entry to %s\n", outPath.c_str());
    else
        std::printf("WARN: could not update %s\n", outPath.c_str());

    if (!healthy || agg.wedgedCells != 0 || agg.mismatches != 0 ||
        agg.samplesDelivered == 0) {
        std::printf("WORKLOAD MIX FAILED\n");
        return 1;
    }
    std::printf("WORKLOAD MIX OK\n");
    return 0;
}
