/**
 * @file
 * CI perf-smoke gate for the events/bit trajectory.
 *
 * Wall-clock benchmarks are too noisy to gate a shared runner, but
 * events/bit -- kernel events retired per delivered wire edge/bit --
 * is a pure function of the simulation, bit-identical on every
 * machine. This gate measures it on:
 *
 *  - tick: the mediator's clock-generation shape as a kernel edge
 *    train (events per delivered edge);
 *  - forward_ring: a 14-hop rhythmic forwarding ring with net-level
 *    train batching (events per delivered edge);
 *  - fig9_n4 / fig9_n10: two real fig9 sweep cells (a full
 *    MBusSystem at 99.9% of the conservative max clock), events per
 *    completed wire data bit;
 *  - workload_mix: the canonical sensing+imaging+storm application
 *    mix (benchutil::canonicalWorkloadCell, the cell workload_mix
 *    documents), events per completed wire data bit through the
 *    workload engine's hot path;
 *  - i2c_std_mix / bitbang_mix / firmware_mix: the same canonical
 *    mix through the transactional-I2C, mixed bit-banged-ring, and
 *    firmware-in-the-loop backends, gating the scheduler cost of
 *    the non-MBus fabrics;
 *  - workload_mix_dispatch / bitbang_mix_dispatch /
 *    firmware_mix_dispatch: listener virtual calls per completed
 *    wire data bit on the same cells -- the cost chunked dispatch
 *    (Net::onEdges batching) keeps down;
 *
 * and fails if any metric regresses more than 10% over the
 * checked-in baseline (bench/perf_baseline.json). Regenerate the
 * baseline with --write-baseline after an intentional change.
 *
 * Usage: perf_gate [--baseline PATH] [--write-baseline PATH]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/fsio.hh"
#include "sweep/sweep.hh"

using namespace mbus;

namespace {

struct Metric
{
    std::string name;
    double value = 0;
};

/** Conservative fig9 max clock (mirrors analysis::conservativeMaxClockHz
 *  without dragging the analysis lib into the gate's hot loop). */
double
fig9ClockHz(int nodes)
{
    double hop_s = 10e-9;
    return 0.999 / (2.0 * hop_s * (nodes + 2.0));
}

double
tickEventsPerEdge()
{
    mbus::sim::Simulator simulator;
    benchutil::TrainTickDriver sink;
    sink.sim = &simulator;
    sink.remaining = 100000;
    sink.arm();
    simulator.run();
    return static_cast<double>(simulator.eventsExecuted()) / 100000.0;
}

double
forwardRingEventsPerEdge()
{
    const std::uint32_t kEdges = 20000;
    benchutil::ForwardRing ring(/*trains=*/true);
    ring.pump(kEdges);
    return ring.eventsPerEdge(kEdges);
}

/** The 2-cell fig9 smoke sweep: events per completed wire data bit. */
std::vector<Metric>
fig9EventsPerBit()
{
    std::vector<sweep::ScenarioSpec> grid;
    for (int n : {4, 10}) {
        sweep::ScenarioSpec s;
        s.name = "fig9_n" + std::to_string(n);
        s.nodes = n;
        s.busClockHz = fig9ClockHz(n);
        s.traffic = sweep::TrafficPattern::SingleSender;
        s.messages = 2;
        s.payloadBytes = 4;
        grid.push_back(std::move(s));
    }
    sweep::SweepConfig cfg;
    cfg.threads = 2;
    sweep::SweepResult result = sweep::SweepDriver(cfg).run(grid);
    std::vector<Metric> out;
    for (const sweep::CellResult &c : result.cells()) {
        if (c.stats.wedged || c.stats.eventsPerBit <= 0) {
            std::fprintf(stderr, "FAIL: %s produced no events/bit\n",
                         c.spec.name.c_str());
            std::exit(1);
        }
        out.push_back({c.spec.name, c.stats.eventsPerBit});
    }
    return out;
}

struct MixCosts
{
    double eventsPerBit = 0;
    double dispatchPerBit = 0;
};

/** One deterministic canonical-mix cell (CI-sized) through @p kind:
 *  kernel events and listener virtual calls per completed wire data
 *  bit. The bitbang fabric needs a 3-chip ring (the software member
 *  caps the population we gate). */
MixCosts
backendMixCosts(backend::BackendKind kind)
{
    int nodes = (kind == backend::BackendKind::Bitbang ||
                 kind == backend::BackendKind::Firmware)
                    ? 3
                    : 4;
    sweep::ScenarioSpec spec = benchutil::canonicalWorkloadCell(
        nodes, /*clockHz=*/400e3, /*stormFrac=*/0.10,
        /*smoke=*/true);
    spec.backend = kind;
    sweep::ScenarioStats st = sweep::runScenario(spec, 0x6d6978ULL);
    if (st.wedged || st.eventsPerBit <= 0 ||
        st.samplesDelivered == 0) {
        std::fprintf(stderr,
                     "FAIL: %s mix cell produced no events/bit\n",
                     backend::backendKindName(kind));
        std::exit(1);
    }
    MixCosts costs;
    costs.eventsPerBit = st.eventsPerBit;
    // eventsPerBit = events / bits, so bits = events / eventsPerBit:
    // recover the completed-wire-bit denominator without widening the
    // ScenarioStats surface.
    double bits = static_cast<double>(st.eventsExecuted) /
                  st.eventsPerBit;
    costs.dispatchPerBit =
        static_cast<double>(st.dispatchCalls) / bits;
    return costs;
}

/** Flat {"name": value, ...} reader; tolerant of whitespace. */
bool
readBaseline(const std::string &path, const std::string &key,
             double &value)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    std::string needle = "\"" + key + "\":";
    std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return false;
    value = std::strtod(text.c_str() + at + needle.size(), nullptr);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath = "bench/perf_baseline.json";
    std::string writePath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baselinePath = argv[++i];
        else if (std::strcmp(argv[i], "--write-baseline") == 0 &&
                 i + 1 < argc)
            writePath = argv[++i];
    }

    std::vector<Metric> metrics;
    metrics.push_back({"tick", tickEventsPerEdge()});
    metrics.push_back({"forward_ring", forwardRingEventsPerEdge()});
    for (Metric &m : fig9EventsPerBit())
        metrics.push_back(m);
    MixCosts mbusMix = backendMixCosts(backend::BackendKind::Mbus);
    MixCosts i2cMix = backendMixCosts(backend::BackendKind::I2cStd);
    MixCosts bbMix = backendMixCosts(backend::BackendKind::Bitbang);
    MixCosts fwMix = backendMixCosts(backend::BackendKind::Firmware);
    metrics.push_back({"workload_mix", mbusMix.eventsPerBit});
    metrics.push_back({"i2c_std_mix", i2cMix.eventsPerBit});
    metrics.push_back({"bitbang_mix", bbMix.eventsPerBit});
    metrics.push_back({"firmware_mix", fwMix.eventsPerBit});
    metrics.push_back(
        {"workload_mix_dispatch", mbusMix.dispatchPerBit});
    metrics.push_back({"bitbang_mix_dispatch", bbMix.dispatchPerBit});
    metrics.push_back(
        {"firmware_mix_dispatch", fwMix.dispatchPerBit});

    if (!writePath.empty()) {
        bool ok = mbus::sim::atomicWriteFile(
            writePath, [&](std::ostream &out) {
                out << "{\n";
                for (std::size_t i = 0; i < metrics.size(); ++i) {
                    out << "  \"" << metrics[i].name
                        << "\": " << metrics[i].value
                        << (i + 1 < metrics.size() ? ",\n" : "\n");
                }
                out << "}\n";
            });
        if (!ok) {
            std::fprintf(stderr, "FAIL: could not write %s\n",
                         writePath.c_str());
            return 1;
        }
        std::printf("wrote baseline %s\n", writePath.c_str());
        return 0;
    }

    std::printf("%-14s %14s %14s %9s\n", "metric", "events/bit",
                "baseline", "ratio");
    bool fail = false;
    for (const Metric &m : metrics) {
        double base = 0;
        if (!readBaseline(baselinePath, m.name, base)) {
            std::fprintf(stderr,
                         "FAIL: no baseline for %s in %s (regenerate "
                         "with --write-baseline)\n",
                         m.name.c_str(), baselinePath.c_str());
            return 1;
        }
        double ratio = base > 0 ? m.value / base : 0;
        std::printf("%-14s %14.5f %14.5f %8.3fx\n", m.name.c_str(),
                    m.value, base, ratio);
        if (m.value > base * 1.10) {
            std::fprintf(stderr,
                         "FAIL: %s events/bit regressed >10%% "
                         "(%f vs baseline %f)\n",
                         m.name.c_str(), m.value, base);
            fail = true;
        }
    }
    if (!fail)
        std::printf("perf gate OK (all metrics within 10%% of "
                    "baseline)\n");
    return fail ? 1 : 0;
}
