/**
 * @file
 * Regenerates Figure 14: saturating transaction rate vs payload
 * length at 100 kHz / 400 kHz / 1 MHz / 7.1 MHz, from the closed
 * form, with an edge-level simulator validation column at 400 kHz.
 *
 * The validation column runs as one sharded sweep (11 cells of 25
 * back-to-back transactions each) through the SweepDriver, with
 * per-cell wall time reported.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/transaction_rate.hh"
#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    bool progress = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--progress") == 0)
            progress = true;

    benchutil::banner(
        "Figure 14: Saturating Transaction Rate vs Payload",
        "Pannuto et al., ISCA'15, Fig 14");

    std::vector<sweep::ScenarioSpec> grid;
    for (std::size_t n = 0; n <= 40; n += 4) {
        sweep::ScenarioSpec s;
        s.name = "fig14_b" + std::to_string(n);
        s.nodes = 3;
        s.busClockHz = 400e3;
        s.traffic = sweep::TrafficPattern::SingleSender;
        s.messages = 25;
        s.payloadBytes = n;
        grid.push_back(std::move(s));
    }
    sweep::SweepConfig cfg;
    cfg.threads = 4;
    if (progress)
        cfg.progress = sweep::stderrProgress();
    sweep::SweepResult result = sweep::SweepDriver(cfg).run(grid);

    std::printf("%6s %12s %12s %12s %12s | %14s %10s\n", "bytes",
                "100kHz", "400kHz", "1MHz", "7.1MHz", "sim@400kHz",
                "cell [ms]");
    for (const sweep::CellResult &cell : result.cells()) {
        std::size_t n = cell.spec.payloadBytes;
        std::printf(
            "%6zu %12.0f %12.0f %12.0f %12.0f | %14.0f %10.3f\n", n,
            analysis::saturatingTransactionRate(100e3, n),
            analysis::saturatingTransactionRate(400e3, n),
            analysis::saturatingTransactionRate(1e6, n),
            analysis::saturatingTransactionRate(7.1e6, n),
            cell.stats.txPerSecond, cell.wallSeconds * 1e3);
    }
    std::printf("sweep total: %zu cells, %.3f s cell wall time\n",
                result.size(), result.totalWallSeconds());

    std::printf("\nShape: rate = f / (19 + 8n + idle), hyperbolic in "
                "payload, linear in clock -- the Fig 14 family. The "
                "simulator column can sit slightly above the closed "
                "form: back-to-back senders overlap the next "
                "arbitration with the idle-return cycles the ideal "
                "model charges in full.\n");
    std::printf("For bursts beyond saturation MBus offers physical "
                "(priority arbitration) and logical (interjection) "
                "federation mechanisms (Sec 6.4).\n");
    return 0;
}
