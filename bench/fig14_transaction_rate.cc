/**
 * @file
 * Regenerates Figure 14: saturating transaction rate vs payload
 * length at 100 kHz / 400 kHz / 1 MHz / 7.1 MHz, from the closed
 * form, with an edge-level simulator validation column at 400 kHz.
 */

#include <cstdio>
#include <functional>

#include "analysis/transaction_rate.hh"
#include "bench/bench_util.hh"
#include "mbus/system.hh"

using namespace mbus;

namespace {

/** Measure back-to-back transactions/second in the simulator. */
double
simulatedRate(std::size_t payloadBytes, double clockHz)
{
    sim::Simulator simulator;
    bus::SystemConfig cfg;
    cfg.busClockHz = clockHz;
    bus::MBusSystem system(simulator, cfg);
    for (int i = 0; i < 3; ++i) {
        bus::NodeConfig nc;
        nc.name = "n" + std::to_string(i);
        nc.fullPrefix = 0x300u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();

    const int kMessages = 25;
    int done = 0;
    std::function<void()> send_next = [&] {
        bus::Message msg;
        msg.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
        msg.payload.assign(payloadBytes, 0x5A);
        system.node(1).send(msg, [&](const bus::TxResult &) {
            if (++done < kMessages)
                send_next();
        });
    };
    sim::SimTime start = simulator.now();
    send_next();
    simulator.runUntil([&] { return done == kMessages; },
                       60 * sim::kSecond);
    double elapsed = sim::toSeconds(simulator.now() - start);
    return done / elapsed;
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 14: Saturating Transaction Rate vs Payload",
        "Pannuto et al., ISCA'15, Fig 14");

    std::printf("%6s %12s %12s %12s %12s | %14s\n", "bytes",
                "100kHz", "400kHz", "1MHz", "7.1MHz",
                "sim@400kHz");
    for (std::size_t n = 0; n <= 40; n += 4) {
        double sim_rate = simulatedRate(n, 400e3);
        std::printf(
            "%6zu %12.0f %12.0f %12.0f %12.0f | %14.0f\n", n,
            analysis::saturatingTransactionRate(100e3, n),
            analysis::saturatingTransactionRate(400e3, n),
            analysis::saturatingTransactionRate(1e6, n),
            analysis::saturatingTransactionRate(7.1e6, n), sim_rate);
    }

    std::printf("\nShape: rate = f / (19 + 8n + idle), hyperbolic in "
                "payload, linear in clock -- the Fig 14 family. The "
                "simulator column includes the mediator wakeup and "
                "idle-return cycles, hence slightly lower than the "
                "ideal closed form.\n");
    std::printf("For bursts beyond saturation MBus offers physical "
                "(priority arbitration) and logical (interjection) "
                "federation mechanisms (Sec 6.4).\n");
    return 0;
}
