/**
 * @file
 * Ablation: the priority-arbitration cycle (Sec 4.3 / Sec 7).
 * Measures the latency of an urgent message from the topologically
 * worst-positioned node while a high-priority neighbour floods the
 * bus -- with and without the priority flag.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "mbus/system.hh"

using namespace mbus;

namespace {

/** Latency of one message from the last node under flood load.
 *  Returns a negative value if the message starved past the cutoff. */
double
urgentLatency(bool usePriority)
{
    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    for (int i = 0; i < 5; ++i) {
        bus::NodeConfig nc;
        nc.name = "n" + std::to_string(i);
        nc.fullPrefix = 0xB00u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();

    // Node 1 (top topological priority) floods node 2 forever.
    std::function<void()> flood = [&] {
        bus::Message msg;
        msg.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
        msg.payload.assign(16, 0xFF);
        system.node(1).send(msg,
                            [&](const bus::TxResult &) { flood(); });
    };
    flood();

    // Let the flood establish, then node 4 (worst position) sends an
    // urgent 2-byte alert to the processor.
    sim::SimTime t_send = 0, t_done = 0;
    simulator.run(simulator.now() + 5 * sim::kMillisecond);
    t_send = simulator.now();
    bool done = false;
    bus::Message urgent;
    urgent.dest = bus::Address::shortAddr(1, bus::kFuMailbox);
    urgent.payload = {0xA1, 0xE7};
    urgent.priority = usePriority;
    system.node(4).send(urgent, [&](const bus::TxResult &r) {
        if (r.status == bus::TxStatus::Ack) {
            done = true;
        }
    });
    simulator.runUntil([&] { return done; }, 2 * sim::kSecond);
    t_done = simulator.now();
    if (!done)
        return -1.0;
    return sim::toSeconds(t_done - t_send) * 1e3;
}

} // namespace

int
main()
{
    benchutil::banner(
        "Ablation: Priority Arbitration under Contention",
        "Pannuto et al., ISCA'15, Secs 4.3, 7 (fairness/priority)");

    double without = urgentLatency(false);
    double with_priority = urgentLatency(true);

    std::printf("urgent 2-byte alert from the topologically worst "
                "node, bus flooded by the best-positioned node "
                "(400 kHz, 16 B flood messages):\n\n");
    if (without < 0)
        std::printf("  plain arbitration:    STARVED (>2 s; MBus "
                    "guarantees no fairness, Sec 7)\n");
    else
        std::printf("  plain arbitration:    %8.3f ms\n", without);
    std::printf("  priority arbitration: %8.3f ms\n", with_priority);
    std::printf("\nThe priority cycle lets physically low-priority "
                "nodes claim the next transaction instead of losing "
                "every topological race (Sec 4.3). MBus deliberately "
                "offers prioritisation rather than fairness (Sec 7, "
                "CAN-style) -- under a continuous flood from a "
                "better-positioned node, a plain request starves "
                "while a priority request lands in well under a "
                "millisecond.\n");
    return 0;
}
