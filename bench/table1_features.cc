/**
 * @file
 * Regenerates Table 1: the feature comparison matrix.
 */

#include <cstdio>

#include "baseline/bus_traits.hh"
#include "bench/bench_util.hh"

using namespace mbus;
using namespace mbus::baseline;

namespace {

const char *
yn(bool v)
{
    return v ? "Yes" : "No";
}

} // namespace

int
main()
{
    benchutil::banner("Table 1: Feature Comparison Matrix",
                      "Pannuto et al., ISCA'15, Table 1");

    auto buses = table1Buses();

    std::printf("%-28s", "");
    for (const auto &b : buses)
        std::printf("%10s", b.name.c_str());
    std::printf("\n");

    auto row = [&](const char *label, auto getter) {
        std::printf("%-28s", label);
        for (const auto &b : buses)
            std::printf("%10s", getter(b).c_str());
        std::printf("\n");
    };

    std::printf("Critical\n");
    row("  I/O pads (n nodes)", [](const BusTraits &b) {
        return b.ioPads;
    });
    row("  Standby power", [](const BusTraits &b) {
        return std::string(powerLevelName(b.standbyPower));
    });
    row("  Active power", [](const BusTraits &b) {
        return std::string(powerLevelName(b.activePower));
    });
    row("  Synthesizable", [](const BusTraits &b) {
        return std::string(yn(b.synthesizable));
    });
    row("  Global uniq addresses", [](const BusTraits &b) {
        if (b.globalUniqueAddresses == 0)
            return std::string("--");
        if (b.globalUniqueAddresses == (1 << 24))
            return std::string("2^24");
        return std::to_string(b.globalUniqueAddresses);
    });
    row("  Multi-master (interrupt)", [](const BusTraits &b) {
        return std::string(yn(b.multiMasterInterrupt));
    });

    std::printf("Desirable\n");
    row("  Broadcast messages", [](const BusTraits &b) {
        return std::string(b.name == "SPI" ? "Option"
                                           : yn(b.broadcastMessages));
    });
    row("  Data-independent", [](const BusTraits &b) {
        return std::string(yn(b.dataIndependent));
    });
    row("  Power aware", [](const BusTraits &b) {
        return std::string(yn(b.powerAware));
    });
    row("  Hardware ACKs", [](const BusTraits &b) {
        return std::string(yn(b.hardwareAcks));
    });
    row("  Bits overhead (n bytes)", [](const BusTraits &b) {
        return b.bitsOverhead;
    });

    benchutil::section("Concrete instantiations");
    std::printf("%-28s", "pads @ 8-node system");
    for (const auto &b : buses)
        std::printf("%10d", b.padsFor(8));
    std::printf("\n%-28s", "overhead bits @ 8 B msg");
    for (const auto &b : buses)
        std::printf("%10zu", b.overheadBitsFor(8));
    std::printf("\n");

    benchutil::section("Verdict");
    for (const auto &b : buses) {
        std::printf("  %-8s meets all micro-scale requirements: %s\n",
                    b.name.c_str(), yn(b.meetsAllRequirements()));
    }
    return 0;
}
