/**
 * @file
 * fleet_runner: the distributed sweep fleet's one binary.
 *
 * Two personalities:
 *
 *  - Coordinator (default): build a preset grid, fan it across N
 *    worker processes x M threads, merge, and emit CSV/JSON plus the
 *    fingerprint. Workers are fork+execs of this same binary unless
 *    --fork-only is given.
 *
 *  - `fleet_runner --fleet-worker`: speak the fleet protocol on
 *    stdin/stdout until told to exit. This is what the coordinator
 *    execs -- and because the protocol is plain JSON lines on
 *    stdin/stdout, `ssh host fleet_runner --fleet-worker` is a
 *    remote worker with no further machinery.
 *
 * Usage (coordinator):
 *   fleet_runner [--grid faulty|mix] [--cells N] [--workers N]
 *                [--threads M] [--seed S] [--ckpt DIR] [--cache DIR]
 *                [--salt X] [--csv PATH] [--json PATH] [--progress]
 *                [--fork-only]
 *
 * Exit status: 0 iff every cell merged (the fingerprint line is
 * printed either way, so a resumed run can be compared by eye).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.hh"
#include "fleet/fleet.hh"
#include "sweep/sweep.hh"

using namespace mbus;

namespace {

/** This binary's own path, for self-exec worker spawning. */
std::string
selfExe(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

std::vector<sweep::ScenarioSpec>
buildGrid(const std::string &kind, std::size_t cells)
{
    if (kind == "mix") {
        std::vector<sweep::ScenarioSpec> grid;
        for (std::size_t i = 0; i < cells; ++i) {
            int nodes = 3 + static_cast<int>(i % 6);
            double clock = (i % 2) != 0 ? 1e6 : 400e3;
            double storm = (i % 4) == 3 ? 0.10 : 0.0;
            sweep::ScenarioSpec s = benchutil::canonicalWorkloadCell(
                nodes, clock, storm, /*smoke=*/true);
            s.name = "fleet_mix" + std::to_string(i);
            grid.push_back(std::move(s));
        }
        return grid;
    }
    return benchutil::faultyFiveFabricGrid(cells, "fleet_cell");
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker personality: nothing but protocol on stdin/stdout.
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--fleet-worker") == 0)
            return fleet::workerMain(0, 1);

    std::string gridKind = "faulty";
    std::size_t cells = 25;
    fleet::FleetConfig cfg;
    cfg.workers = 2;
    cfg.threadsPerWorker = 1;
    bool forkOnly = false;
    std::string csvPath;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char *name) {
            return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
        };
        if (arg("--grid"))
            gridKind = argv[++i];
        else if (arg("--cells"))
            cells = std::strtoull(argv[++i], nullptr, 10);
        else if (arg("--workers"))
            cfg.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg("--threads"))
            cfg.threadsPerWorker = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg("--seed"))
            cfg.masterSeed = std::strtoull(argv[++i], nullptr, 0);
        else if (arg("--ckpt"))
            cfg.checkpointDir = argv[++i];
        else if (arg("--cache"))
            cfg.cacheDir = argv[++i];
        else if (arg("--salt"))
            cfg.cacheSalt = std::strtoull(argv[++i], nullptr, 0);
        else if (arg("--csv"))
            csvPath = argv[++i];
        else if (arg("--json"))
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--progress") == 0)
            cfg.progress = true;
        else if (std::strcmp(argv[i], "--fork-only") == 0)
            forkOnly = true;
    }
    if (!forkOnly)
        cfg.workerExe = selfExe(argv[0]);

    benchutil::banner(
        "fleet_runner: distributed sweep coordinator",
        "N processes x M threads == 1 process x 1 thread, by byte");

    std::vector<sweep::ScenarioSpec> grid = buildGrid(gridKind, cells);
    std::printf("grid=%s cells=%zu workers=%u threads=%u %s%s%s\n",
                gridKind.c_str(), grid.size(), cfg.workers,
                cfg.threadsPerWorker,
                forkOnly ? "fork-only" : "self-exec",
                cfg.checkpointDir.empty() ? "" : " ckpt",
                cfg.cacheDir.empty() ? "" : " cache");

    fleet::FleetResult fr = fleet::runFleet(grid, cfg);
    const fleet::FleetStats &st = fr.stats;

    std::printf("merged %zu/%llu cells  fingerprint=%016llx\n",
                fr.result.size(),
                static_cast<unsigned long long>(st.cellsTotal),
                static_cast<unsigned long long>(
                    fr.result.fingerprint()));
    std::printf("simulated=%llu cache hit/miss=%llu/%llu "
                "journal-recovered=%llu stolen=%llu deaths=%llu "
                "spawned=%llu%s\n",
                static_cast<unsigned long long>(st.cellsSimulated),
                static_cast<unsigned long long>(st.cacheHits),
                static_cast<unsigned long long>(st.cacheMisses),
                static_cast<unsigned long long>(st.cellsFromJournal),
                static_cast<unsigned long long>(st.cellsStolen),
                static_cast<unsigned long long>(st.workerDeaths),
                static_cast<unsigned long long>(st.workersSpawned),
                st.aborted ? "  ABORTED" : "");

    if (!csvPath.empty())
        std::printf("csv %s: %s\n", csvPath.c_str(),
                    fr.result.writeCsvFile(csvPath) ? "written"
                                                    : "FAILED");
    if (!jsonPath.empty())
        std::printf("json %s: %s\n", jsonPath.c_str(),
                    fr.result.writeJsonFile(jsonPath) ? "written"
                                                      : "FAILED");
    return fr.complete ? 0 : 1;
}
