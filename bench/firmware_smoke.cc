/**
 * @file
 * CI smoke for the firmware-in-the-loop backend: the canonical
 * sensing+imaging+storm mix on the mixed ring, once with the
 * behavioral software member (bitbang) and once with the ported
 * libmbus firmware (firmware), each quiet and stormy, run on 2
 * worker threads and re-run single-threaded.
 *
 * Three gates, any failure exits non-zero:
 *  - determinism: 2-thread and 1-thread outputs byte-identical
 *    (CSV + JSON + fingerprint);
 *  - health: no wedge, no corrupted delivery, samples actually
 *    delivered, outcome counters sum to plan;
 *  - equivalence: for each storm level, the firmware cell's
 *    bus-observable stats match the behavioral model's cell exactly
 *    (delivered samples/bytes, outcome counts, switching energy) --
 *    the standing differential guarantee, enforced on every CI run.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    const char *out = "firmware_smoke.csv";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];

    benchutil::banner(
        "Firmware smoke: libmbus FSM vs behavioral model, 2-thread "
        "vs 1-thread byte identity",
        "firmware-in-the-loop self-check (CI gate)");

    // One WorkloadSpec, both software-member flavors, quiet + storm.
    std::vector<sweep::ScenarioSpec> grid;
    for (backend::BackendKind kind : {backend::BackendKind::Bitbang,
                                      backend::BackendKind::Firmware}) {
        for (double storm : {0.0, 0.15}) {
            sweep::ScenarioSpec s = benchutil::canonicalWorkloadCell(
                /*nodes=*/3, /*clockHz=*/400e3, storm, /*smoke=*/true);
            s.workload.durationS = 6.0;
            s.backend = kind;
            s.name = std::string(backend::backendKindName(kind)) +
                     (storm > 0 ? "_storm" : "_quiet");
            grid.push_back(std::move(s));
        }
    }

    sweep::SweepConfig sharded;
    sharded.threads = 2;
    sweep::SweepConfig solo;
    solo.threads = 1;
    sweep::SweepResult a = sweep::SweepDriver(sharded).run(grid);
    sweep::SweepResult b = sweep::SweepDriver(solo).run(grid);

    std::ostringstream csvA, csvB, jsonA, jsonB;
    a.writeCsv(csvA);
    b.writeCsv(csvB);
    a.writeJson(jsonA);
    b.writeJson(jsonB);
    bool identical = csvA.str() == csvB.str() &&
                     jsonA.str() == jsonB.str() &&
                     a.fingerprint() == b.fingerprint();

    std::printf("%-18s %9s %9s %12s %12s %12s %10s\n", "cell",
                "samples", "missed", "e/sample[J]", "lat_p99[s]",
                "lifetime[d]", "wedged");
    bool healthy = true;
    for (const sweep::CellResult &c : a.cells()) {
        const sweep::ScenarioStats &s = c.stats;
        std::printf("%-18s %5d/%-3d %9d %12.3e %12.3e %12.1f %10s\n",
                    c.spec.name.c_str(), s.samplesDelivered,
                    s.samplesPlanned, s.missedDeadlines,
                    s.energyPerSampleJ, s.latencyP99S, s.lifetimeDays,
                    s.wedged ? "WEDGED" : "no");
        if (s.wedged || s.payloadMismatches != 0 ||
            s.samplesDelivered == 0)
            healthy = false;
        if (s.planned != s.acked + s.naked + s.broadcasts +
                             s.interrupted + s.rxAborts + s.failed)
            healthy = false;
    }

    // Differential gate: replay the model cells' exact (spec, seed)
    // with only the software-member flavor swapped. (The sweep grid's
    // firmware cells sit at different indices, hence different
    // driver-derived seeds -- not comparable directly.)
    bool equivalent = true;
    for (std::size_t i = 0; i < 2; ++i) {
        const sweep::ScenarioStats &m = a.cells()[i].stats;
        sweep::ScenarioSpec twin = a.cells()[i].spec;
        twin.backend = backend::BackendKind::Firmware;
        sweep::ScenarioStats f =
            sweep::runScenario(twin, a.cells()[i].seed);
        bool same = m.samplesDelivered == f.samplesDelivered &&
                    m.missedDeadlines == f.missedDeadlines &&
                    m.acked == f.acked && m.naked == f.naked &&
                    m.interrupted == f.interrupted &&
                    m.failed == f.failed &&
                    m.bytesDelivered == f.bytesDelivered &&
                    m.clockCycles == f.clockCycles &&
                    m.switchingJ == f.switchingJ;
        std::printf("differential %-7s: model vs firmware %s\n",
                    i == 0 ? "quiet" : "storm",
                    same ? "EQUAL" : "DIVERGED");
        if (!same)
            equivalent = false;
    }

    std::printf("fingerprint=%016llx (2 threads) vs %016llx (1 "
                "thread): %s\n",
                static_cast<unsigned long long>(a.fingerprint()),
                static_cast<unsigned long long>(b.fingerprint()),
                identical ? "IDENTICAL" : "DIVERGED");
    std::printf("wall: %.3f s across %zu cells (2 threads)\n",
                a.totalWallSeconds(), a.size());

    std::ofstream os(out);
    a.writeCsv(os, /*includeWallTime=*/true);
    std::printf("wrote %s\n", out);

    if (!identical || !healthy || !equivalent) {
        std::printf("FIRMWARE SMOKE FAILED\n");
        return 1;
    }
    std::printf("FIRMWARE SMOKE OK\n");
    return 0;
}
