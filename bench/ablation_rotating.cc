/**
 * @file
 * Ablation: rotating (mutable) arbitration priority -- the fair
 * scheme sketched in Section 7 and credited to Campbell and
 * Horowitz. Three saturating senders share one bus; we measure each
 * sender's share of delivered messages with the default fixed
 * topological priority and with per-transaction rotation.
 */

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.hh"
#include "mbus/system.hh"

using namespace mbus;

namespace {

struct Shares
{
    int delivered[4] = {0, 0, 0, 0};
    int total = 0;
};

Shares
runFlood(bool rotate)
{
    sim::Simulator simulator;
    bus::SystemConfig cfg;
    cfg.useNodeArbBreak = rotate;
    bus::MBusSystem system(simulator, cfg);
    for (int i = 0; i < 4; ++i) {
        bus::NodeConfig nc;
        nc.name = "n" + std::to_string(i);
        nc.fullPrefix = 0xD00u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();
    if (rotate)
        system.enableRotatingPriority();

    Shares shares;
    std::vector<std::shared_ptr<std::function<void()>>> floods;
    for (std::size_t sender = 1; sender <= 3; ++sender) {
        auto flood = std::make_shared<std::function<void()>>();
        *flood = [&system, &shares, sender, flood] {
            bus::Message msg;
            msg.dest = bus::Address::shortAddr(1, bus::kFuMailbox);
            msg.payload.assign(8, 0x11);
            system.node(sender).send(
                msg,
                [&shares, sender, flood](const bus::TxResult &r) {
                    if (r.status == bus::TxStatus::Ack) {
                        ++shares.delivered[sender];
                        ++shares.total;
                    }
                    (*flood)();
                });
        };
        floods.push_back(flood);
        (*flood)();
    }
    simulator.run(simulator.now() + 500 * sim::kMillisecond);
    return shares;
}

void
report(const char *label, const Shares &s)
{
    std::printf("%-22s total %5d | shares:", label, s.total);
    for (int i = 1; i <= 3; ++i) {
        std::printf("  n%d %5.1f%%", i,
                    s.total ? 100.0 * s.delivered[i] / s.total : 0.0);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    benchutil::banner(
        "Ablation: Rotating Arbitration Priority (fairness)",
        "Pannuto et al., ISCA'15, Sec 7 discussion");

    std::printf("three senders flooding 8-byte messages for 500 ms "
                "at 400 kHz:\n\n");
    Shares fixed = runFlood(false);
    Shares rotating = runFlood(true);
    report("fixed (topological)", fixed);
    report("rotating priority", rotating);

    std::printf("\nFixed priority starves everyone behind the "
                "best-positioned requester; rotating the ring break "
                "each transaction spreads access evenly -- at the "
                "cost of one bit of state in every node's always-on "
                "wire controller (exactly the trade-off Sec 7 "
                "names).\n");
    return 0;
}
