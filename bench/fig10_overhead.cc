/**
 * @file
 * Regenerates Figure 10: bits of protocol overhead vs message length
 * for UART (1/2 stop bits), I2C, SPI, and MBus (short/full).
 */

#include <cstdio>

#include "analysis/overhead.hh"
#include "baseline/i2c.hh"
#include "baseline/spi.hh"
#include "baseline/uart.hh"
#include "bench/bench_util.hh"

using namespace mbus;
using namespace mbus::analysis;

int
main()
{
    benchutil::banner("Figure 10: Bus Overhead vs Message Length",
                      "Pannuto et al., ISCA'15, Fig 10");

    baseline::UartModel uart1(1), uart2(2);

    std::printf("%6s %12s %12s %8s %8s %12s %12s\n", "bytes",
                "UART(1stop)", "UART(2stop)", "I2C", "SPI",
                "MBus(short)", "MBus(full)");
    for (std::size_t n = 0; n <= 40; n += 2) {
        std::printf("%6zu %12zu %12zu %8zu %8zu %12zu %12zu\n", n,
                    uart1.overheadBits(n), uart2.overheadBits(n),
                    baseline::I2cModel::overheadBits(n),
                    baseline::SpiModel::overheadBits(n),
                    mbusOverheadBits(n, false),
                    mbusOverheadBits(n, true));
    }

    benchutil::section("Crossovers (paper: 7 bytes vs 2-stop UART; "
                       "9 bytes vs I2C / 1-stop UART)");
    auto mbus_short = [](std::size_t n) {
        return mbusOverheadBits(n, false);
    };
    auto uart2_fn = [](std::size_t n) {
        return baseline::UartModel(2).overheadBits(n);
    };
    auto uart1_fn = [](std::size_t n) {
        return baseline::UartModel(1).overheadBits(n);
    };
    std::printf("MBus(short) < UART(2stop) from: %zu bytes\n",
                crossoverBytes(mbus_short, uart2_fn, 100));
    std::printf("MBus(short) <= I2C        from: %zu bytes "
                "(equal at 9, strictly below at 10)\n",
                crossoverBytes(mbus_short,
                               baseline::I2cModel::overheadBits, 100) -
                    1);
    std::printf("MBus(short) <= UART(1stop) from: %zu bytes\n",
                crossoverBytes(mbus_short, uart1_fn, 100) - 1);
    std::printf("\nMBus overhead is independent of length: a 28.8 kB "
                "image costs the same 19 bits of overhead as a "
                "1-byte reading.\n");
    return 0;
}
