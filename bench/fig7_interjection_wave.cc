/**
 * @file
 * Regenerates Figure 7: interjection and control. Node 2 transmits
 * to node 1; at end of message it stops forwarding CLK, the mediator
 * toggles DATA while CLK is held high, and the two control cycles
 * carry EoM + ACK.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "mbus/protocol.hh"
#include "mbus/system.hh"
#include "sim/vcd.hh"

using namespace mbus;

int
main()
{
    benchutil::banner(
        "Figure 7: MBus Interjection and Control Waveform",
        "Pannuto et al., ISCA'15, Fig 7");

    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    for (int i = 0; i < 3; ++i) {
        bus::NodeConfig nc;
        nc.name = i == 0 ? "med" : "node" + std::to_string(i);
        nc.fullPrefix = 0x700u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();

    sim::TraceRecorder rec;
    system.attachTrace(rec);

    bus::Message msg;
    msg.dest = bus::Address::shortAddr(2, bus::kFuMailbox); // node 1.
    msg.payload = {0xD7}; // 1101 0111: matches Fig 7's bit pattern.
    auto result = system.sendAndWait(2, msg, sim::kSecond);
    system.runUntilIdle(sim::kSecond);

    sim::SimTime period =
        sim::periodFromHz(system.config().busClockHz);
    // Show the tail: last data bits, interjection, control, idle.
    sim::SimTime end = simulator.now();
    sim::SimTime start = end > 14 * period ? end - 14 * period : 0;
    std::printf("\nEnd of transaction, one cell = 1/8 bus cycle:\n\n");
    rec.renderAscii(std::cout, start, end, period / 8);

    std::printf("\nTX status: %s (paper: transmitter drives Ctl Bit "
                "0 high = EoM; receiver drives Ctl Bit 1 low = "
                "ACK)\n",
                result ? bus::txStatusName(result->status) : "none");
    std::printf("mediator ring-break interjections: %llu\n",
                static_cast<unsigned long long>(
                    system.mediator().stats().interjections));
    std::printf("protocol overhead: %d cycles short / %d cycles "
                "full addressing (Sec 6.1)\n",
                bus::kOverheadShortBits, bus::kOverheadFullBits);

    std::ofstream vcd("fig7.vcd");
    rec.writeVcd(vcd);
    std::printf("full trace written to fig7.vcd\n");
    return 0;
}
