/**
 * @file
 * Software-member clock ceiling: ISR latency x bus clock (Sec 6.6).
 *
 * The paper's software MBus implementation tops out far below the
 * hardware clock because every CLK edge must be serviced by an ISR
 * before the next one lands. This bench probes that ceiling with the
 * real (ported) firmware in the loop: the mixed ring is deliberately
 * overclocked past the software member's envelope
 * (allowUnsafeClock), the firmware runs in merge-missed-edges mode
 * (a second edge arriving while the ISR is pending is absorbed, as
 * the MCU's interrupt flag would), and extra seeded ISR-entry jitter
 * models a busier MCU. Where edges merge, the firmware's
 * MBUS_CLOCK_SYNCH_ERROR path fires and transfers fail -- the
 * highest clock with a clean sweep of round-trip messages is the
 * ceiling for that jitter level.
 *
 * Output: one CSV row per (jitter, clock) cell plus a per-jitter
 * ceiling summary -- the software-member twin of fig9's hardware
 * max-frequency sweep.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "backend/bitbang_backend.hh"
#include "bench/bench_util.hh"
#include "sim/simulator.hh"

using namespace mbus;

namespace {

struct Cell
{
    std::uint32_t jitterCycles = 0;
    double clockHz = 0;
    int acked = 0;
    int failed = 0;
    std::uint64_t localErrors = 0;
    std::uint64_t mergedEdges = 0;
};

/** Round-trip traffic at one (jitter, clock) point. */
Cell
probe(std::uint32_t jitterCycles, double clockHz, int messages)
{
    sim::Simulator simulator;
    backend::BusParams p;
    p.nodes = 3;
    p.busClockHz = clockHz;
    p.fwIsrJitterCycles = jitterCycles;
    p.fwMergeMissedEdges = true;
    p.allowUnsafeClock = true;
    backend::BitbangBackend ring(
        simulator, p, backend::BitbangBackend::SoftFlavor::Firmware);

    Cell cell;
    cell.jitterCycles = jitterCycles;
    cell.clockHz = clockHz;
    for (int i = 0; i < messages; ++i) {
        // Alternate directions: the member both forwards under
        // pressure (hw -> soft) and transmits under pressure.
        bool fromSoft = i % 2 == 0;
        bus::Message msg;
        msg.dest = fromSoft
                       ? ring.unicastAddress(0, false, 7)
                       : ring.unicastAddress(ring.softIndex(), false, 0);
        msg.payload = {static_cast<std::uint8_t>(i), 0x5A, 0xC3};
        std::optional<bus::TxResult> result;
        ring.send(fromSoft ? ring.softIndex() : 0, msg,
                  [&](const bus::TxResult &r) { result = r; });
        simulator.runUntil([&] { return result.has_value(); },
                           sim::kSecond);
        if (result.has_value() &&
            result->status == bus::TxStatus::Ack)
            ++cell.acked;
        else
            ++cell.failed;
        if (!ring.runUntilIdle(sim::kSecond))
            break; // Wedged past the envelope: remaining sends fail.
    }
    cell.failed = messages - cell.acked;
    cell.localErrors = ring.firmwareNode().stats().localErrors;
    cell.mergedEdges = ring.firmwareNode().stats().mergedEdges;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out = "firmware_ceiling.csv";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[i + 1];
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    benchutil::banner(
        "Firmware clock ceiling: ISR latency x bus clock",
        "Sec 6.6 -- the software member's envelope, firmware in the "
        "loop");

    const int messages = smoke ? 4 : 8;
    std::vector<std::uint32_t> jitters =
        smoke ? std::vector<std::uint32_t>{0, 32}
              : std::vector<std::uint32_t>{0, 8, 32, 64, 128};
    std::vector<double> clocks;
    for (double hz = 6e3; hz <= 60e3; hz *= smoke ? 1.6 : 1.25)
        clocks.push_back(hz);

    std::ofstream os(out);
    os << "jitter_cycles,clock_hz,acked,failed,local_errors,"
          "merged_edges\n";
    std::printf("%-8s %10s %6s %6s %8s %8s\n", "jitter", "clock[Hz]",
                "acked", "failed", "locErr", "merged");
    for (std::uint32_t j : jitters) {
        double ceiling = 0;
        for (double hz : clocks) {
            Cell c = probe(j, hz, messages);
            os << c.jitterCycles << ',' << c.clockHz << ','
               << c.acked << ',' << c.failed << ',' << c.localErrors
               << ',' << c.mergedEdges << '\n';
            std::printf("%-8u %10.0f %6d %6d %8llu %8llu\n",
                        c.jitterCycles, c.clockHz, c.acked, c.failed,
                        static_cast<unsigned long long>(c.localErrors),
                        static_cast<unsigned long long>(c.mergedEdges));
            if (c.failed == 0)
                ceiling = hz; // Clocks ascend: last clean sweep wins.
        }
        std::printf("jitter %3u cycles: ceiling ~%.0f Hz\n", j,
                    ceiling);
    }
    std::printf("wrote %s\n", out);
    return 0;
}
