/**
 * @file
 * CI fault-injection smoke: a faulty grid spanning all five fabrics
 * runs on 2 worker threads and is re-run single-threaded, with the
 * shard-determinism property checked end-to-end on the fault axis
 * (byte-identical CSV + equal fingerprints). Health checks: zero
 * wedges (the watchdog reclaimed every hang), every planned
 * transaction terminal, and the schedule actually fired. Exits
 * non-zero on any divergence, so CI fails the PR. The report lands
 * via the crash-safe writer (temp file + atomic rename).
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/random.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    const char *out = "fault_smoke.csv";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];

    benchutil::banner(
        "Fault smoke: shard determinism on a faulty five-fabric grid",
        "fault engine + watchdog + retry self-check (CI gate)");

    // Shared with fleet_smoke: the fleet gate must sweep the exact
    // same cells this gate pins in-process determinism on.
    std::vector<sweep::ScenarioSpec> grid =
        benchutil::faultyFiveFabricGrid(25);

    sweep::SweepConfig sharded;
    sharded.threads = 2;
    sweep::SweepConfig solo;
    solo.threads = 1;
    sweep::SweepResult a = sweep::SweepDriver(sharded).run(grid);
    sweep::SweepResult b = sweep::SweepDriver(solo).run(grid);

    std::ostringstream csvA, csvB;
    a.writeCsv(csvA);
    b.writeCsv(csvB);
    bool identical = csvA.str() == csvB.str() &&
                     a.fingerprint() == b.fingerprint();

    // Per-fabric survivability summary (grid order is fabric-cyclic).
    std::printf("%-10s %7s %7s %7s %7s %7s %7s %11s\n", "fabric",
                "faults", "bresets", "tresets", "retries", "recov",
                "abandon", "acked/plan");
    for (int f = 0; f < 5; ++f) {
        std::uint64_t faults = 0, bresets = 0, retries = 0;
        int tresets = 0, recov = 0, abandon = 0, acked = 0, planned = 0;
        for (std::size_t i = f; i < a.size(); i += 5) {
            const sweep::ScenarioStats &st = a.cell(i).stats;
            faults += st.faultEvents;
            bresets += st.busResets;
            tresets += st.txResets;
            retries += st.retries;
            recov += st.recoveredTx;
            abandon += st.abandonedTx;
            acked += st.acked + st.broadcasts;
            planned += st.planned;
        }
        std::printf("%-10s %7llu %7llu %7d %7llu %7d %7d %6d/%-4d\n",
                    backend::backendKindName(benchutil::kFiveFabrics[f]),
                    static_cast<unsigned long long>(faults),
                    static_cast<unsigned long long>(bresets), tresets,
                    static_cast<unsigned long long>(retries), recov,
                    abandon, acked, planned);
    }

    sweep::SweepAggregate agg = a.aggregate();
    std::printf("fingerprint=%016llx (2 threads) vs %016llx (1 "
                "thread): %s\n",
                static_cast<unsigned long long>(a.fingerprint()),
                static_cast<unsigned long long>(b.fingerprint()),
                identical ? "IDENTICAL" : "DIVERGED");
    std::printf("wall: %.3f s across %zu cells (2 threads)\n",
                a.totalWallSeconds(), a.size());

    bool wrote = a.writeCsvFile(out, /*includeWallTime=*/true);
    std::printf("%s %s (atomic rename)\n",
                wrote ? "wrote" : "FAILED TO WRITE", out);

    // Corrupted-but-delivered payloads are legitimate physics under
    // glitch injection (MBus carries no payload CRC), so mismatches
    // are reported, not gated on. The hard invariants: no wedges,
    // conservation of transaction outcomes, and a schedule that
    // actually fired.
    std::printf("corrupted deliveries under fault: %llu\n",
                static_cast<unsigned long long>(agg.mismatches));
    bool healthy =
        agg.wedgedCells == 0 && agg.faultEvents > 0 &&
        agg.planned == agg.acked + agg.naked + agg.broadcasts +
                           agg.interrupted + agg.rxAborts + agg.failed;
    if (!identical || !healthy || !wrote) {
        std::printf("FAULT SMOKE FAILED\n");
        return 1;
    }
    std::printf("FAULT SMOKE OK\n");
    return 0;
}
