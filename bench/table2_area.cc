/**
 * @file
 * Regenerates Table 2: size of MBus components vs other buses, plus
 * the fitted 180 nm area model (our substitution for synthesis).
 */

#include <cstdio>

#include "analysis/area_model.hh"
#include "bench/bench_util.hh"

using namespace mbus;
using namespace mbus::analysis;

int
main()
{
    benchutil::banner("Table 2: Size of MBus Components",
                      "Pannuto et al., ISCA'15, Table 2");

    std::printf("%-24s %8s %8s %12s %14s\n", "Module", "SLOC",
                "Gates", "Flip-Flops", "Area(180nm)");

    auto rows = table2Modules();
    for (const auto &m : rows) {
        if (!m.isMbus)
            continue;
        std::printf("%-24s %8d %8d %12d %12.0f um2%s\n",
                    m.name.c_str(), m.verilogSloc, m.gates,
                    m.flipFlops, m.areaUm2,
                    m.optional ? "  (optional)" : "");
    }
    ModuleArea total = mbusTotal();
    std::printf("%-24s %8d %8d %12d %12.0f um2\n", "Total",
                total.verilogSloc, total.gates, total.flipFlops,
                total.areaUm2);

    benchutil::section("Other buses (synthesized for 180 nm)");
    for (const auto &m : rows) {
        if (m.isMbus)
            continue;
        std::printf("%-24s %8d %8d %12d %12.0f um2\n",
                    m.name.c_str(), m.verilogSloc, m.gates,
                    m.flipFlops, m.areaUm2);
    }

    benchutil::section("Fitted linear area model (our substitution "
                       "for synthesis)");
    AreaFit fit = fitAreaModel(rows);
    std::printf("area ~= %.2f um2/gate + %.2f um2/flop + %.0f um2\n",
                fit.perGateUm2, fit.perFlopUm2, fit.fixedUm2);
    std::printf("%-24s %12s %12s %8s\n", "Module", "actual",
                "predicted", "error");
    for (const auto &m : rows) {
        double pred = fit.predict(m.gates, m.flipFlops);
        std::printf("%-24s %10.0f %12.0f %7.0f%%\n", m.name.c_str(),
                    m.areaUm2, pred,
                    100.0 * (pred - m.areaUm2) / m.areaUm2);
    }
    std::printf("(Tiny always-on modules are fixed-overhead "
                "dominated; the fit tracks the large modules that "
                "decide the comparison.)\n");

    benchutil::section("Headline comparison");
    double i2c = 0, spi = 0, lee = 0;
    for (const auto &m : rows) {
        if (m.name == "I2C")
            i2c = m.areaUm2;
        if (m.name == "SPI Master")
            spi = m.areaUm2;
        if (m.name == "Lee I2C")
            lee = m.areaUm2;
    }
    std::printf("MBus total / I2C   = %.2fx\n", total.areaUm2 / i2c);
    std::printf("MBus total / SPI   = %.2fx\n", total.areaUm2 / spi);
    std::printf("MBus total / LeeI2C= %.2fx\n", total.areaUm2 / lee);
    std::printf("Non-power-gated designs need only the Bus "
                "Controller: %.0f um2\n", rows[0].areaUm2);
    return 0;
}
