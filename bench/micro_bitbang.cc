/**
 * @file
 * Regenerates the Section 6.6 bitbang analysis: MSP430 worst-case
 * path accounting, the resulting maximum bus clock, the comparison
 * with Wikipedia's bitbang I2C, and a live mixed hardware/software
 * ring demonstration.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bitbang/bitbang_i2c.hh"
#include "bitbang/mixed_ring.hh"

using namespace mbus;
using namespace mbus::bitbang;

int
main()
{
    benchutil::banner("Sec 6.6: Bitbanging MBus",
                      "Pannuto et al., ISCA'15, Sec 6.6");

    Msp430CostModel cost;
    benchutil::section("Worst-case edge-to-output path (MSP430, "
                       "msp430-gcc)");
    std::printf("instructions: %d (paper: 20)\n",
                cost.worstPathInstructions());
    std::printf("cycles incl. interrupt entry/exit: %d (paper: "
                "65)\n", cost.worstPathCycles());
    std::printf("max MBus clock at 8 MHz, paper arithmetic "
                "(cpu/worst): %.0f kHz (paper: \"up to 120 kHz\")\n",
                cost.maxBusClockHzPaper() / 1e3);
    std::printf("conservative (response within half period, "
                "hardware peer latching): %.1f kHz\n",
                cost.maxBusClockHzConservative() / 1e3);

    benchutil::section("Bitbang I2C reference ([2], compiled per the "
                       "paper's footnote)");
    BitbangI2c i2c;
    std::printf("longest path: %d instructions (paper: 21) / %d "
                "cycles -- \"similar overhead\"\n",
                i2c.longestPath().instructions,
                i2c.longestPath().cycles);
    std::printf("max SCL from straight-line path: %.0f kHz\n",
                i2c.maxSclHz() / 1e3);

    benchutil::section("Mixed ring demo: 2 hardware nodes + 1 "
                       "software member at 20 kHz");
    sim::Simulator simulator;
    bus::SystemConfig cfg;
    cfg.busClockHz = 20e3;
    BitbangMbus::Config bb;
    bb.shortPrefix = 3;
    MixedRing ring(simulator, cfg, bb);

    int sw_rx = 0, hw_rx = 0;
    ring.softNode().setReceiveCallback(
        [&](const bus::ReceivedMessage &) { ++sw_rx; });
    ring.hw1().layer().setMailboxHandler(
        [&](const bus::ReceivedMessage &) { ++hw_rx; });

    // hw0 -> software member.
    bus::Message to_sw;
    to_sw.dest = bus::Address::shortAddr(3, 0);
    to_sw.payload = {0xBE, 0xEF};
    bool d1 = false;
    ring.hw0().send(to_sw, [&](const bus::TxResult &r) {
        std::printf("hw0 -> bitbang: %s\n",
                    bus::txStatusName(r.status));
        d1 = true;
    });
    simulator.runUntil([&] { return d1; }, sim::kSecond);

    // Software member -> hw1 (full TX path in software).
    bus::Message to_hw;
    to_hw.dest = bus::Address::shortAddr(2, bus::kFuMailbox);
    to_hw.payload = {0x42, 0x24, 0x99};
    bool d2 = false;
    ring.softNode().send(to_hw, [&](const bus::TxResult &r) {
        std::printf("bitbang -> hw1: %s\n",
                    bus::txStatusName(r.status));
        d2 = true;
    });
    simulator.runUntil([&] { return d2; }, 2 * sim::kSecond);
    simulator.run(simulator.now() + 100 * sim::kMillisecond);

    std::printf("deliveries: software member %d, hardware member "
                "%d\n", sw_rx, hw_rx);
    std::printf("software ISR stats: %llu invocations, %llu cycles, "
                "max path %d cycles (model bound %d)\n",
                static_cast<unsigned long long>(
                    ring.softNode().stats().isrInvocations),
                static_cast<unsigned long long>(
                    ring.softNode().stats().cyclesSpent),
                ring.softNode().maxObservedPathCycles(),
                cost.worstPathCycles());
    std::printf("\nShape: software members interoperate with "
                "hardware MBus with zero tuning, at clocks bounded "
                "by cpu_clock / worst_isr_path -- the Sec 6.6 "
                "claim.\n");
    return 0;
}
