/**
 * @file
 * Ablation: message coalescing. Figure 11b's caption advises that
 * "systems should attempt to coalesce messages if possible"; this
 * bench quantifies it by sending the same 64 bytes of telemetry as
 * 64x1 B, 8x8 B, and 1x64 B through the edge-level simulator and
 * comparing wall-clock time and energy.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "mbus/system.hh"
#include "sim/random.hh"

using namespace mbus;

namespace {

struct Outcome
{
    double seconds;
    double joules;
};

Outcome
run(std::size_t chunk, std::size_t total)
{
    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    for (int i = 0; i < 3; ++i) {
        bus::NodeConfig nc;
        nc.name = "n" + std::to_string(i);
        nc.fullPrefix = 0xA00u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();

    sim::Random rng(chunk);
    std::size_t sent = 0;
    int in_flight = 0;
    bool failed = false;
    sim::SimTime start = simulator.now();

    std::function<void()> send_next = [&] {
        if (sent >= total)
            return;
        bus::Message msg;
        msg.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
        msg.payload.resize(chunk);
        for (auto &b : msg.payload)
            b = rng.byte();
        sent += chunk;
        ++in_flight;
        system.node(1).send(msg, [&](const bus::TxResult &r) {
            --in_flight;
            if (r.status != bus::TxStatus::Ack)
                failed = true;
            send_next();
        });
    };
    send_next();
    simulator.runUntil(
        [&] { return sent >= total && in_flight == 0; },
        60 * sim::kSecond);
    if (failed)
        std::printf("(unexpected failure)\n");
    return Outcome{sim::toSeconds(simulator.now() - start),
                   system.ledger().total()};
}

} // namespace

int
main()
{
    benchutil::banner(
        "Ablation: Message Coalescing (64 B of telemetry)",
        "Pannuto et al., ISCA'15, Fig 11b caption + Sec 6.2");

    std::printf("%10s %10s %12s %14s %14s\n", "chunk[B]", "msgs",
                "time[ms]", "energy[nJ]", "overhead bits");
    Outcome base{};
    for (std::size_t chunk : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        Outcome o = run(chunk, 64);
        if (chunk == 1)
            base = o;
        std::size_t msgs = 64 / chunk;
        std::printf("%10zu %10zu %12.2f %14.2f %14zu\n", chunk, msgs,
                    o.seconds * 1e3, o.joules * 1e9, msgs * 19);
    }
    Outcome best = run(64, 64);
    std::printf("\ncoalescing 64x1 B -> 1x64 B: %.1fx faster, %.1fx "
                "less bus energy.\n", base.seconds / best.seconds,
                base.joules / best.joules);
    return 0;
}
