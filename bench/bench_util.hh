/**
 * @file
 * Small shared helpers for the reproduction benches: consistent
 * headers and number formatting so every bench prints paper-style
 * rows that EXPERIMENTS.md can quote directly.
 */

#ifndef MBUS_BENCH_BENCH_UTIL_HH
#define MBUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace mbus {
namespace benchutil {

inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("==============================================="
                "=====================\n");
}

inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

} // namespace benchutil
} // namespace mbus

#endif // MBUS_BENCH_BENCH_UTIL_HH
