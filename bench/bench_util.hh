/**
 * @file
 * Small shared helpers for the reproduction benches: consistent
 * headers and number formatting so every bench prints paper-style
 * rows that EXPERIMENTS.md can quote directly.
 */

#ifndef MBUS_BENCH_BENCH_UTIL_HH
#define MBUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "wire/net.hh"

namespace mbus {
namespace benchutil {

inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("==============================================="
                "=====================\n");
}

inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

// --- Shared edge-train workload harnesses ---------------------------
//
// bench_kernel (wall-clock throughput) and perf_gate (deterministic
// events/bit regression gate) must measure the *same* workloads, or
// the checked-in baseline silently drifts away from what the bench
// documents. Both build on these.

/**
 * Chunked self-train tick driver: the mediator's clock-generation
 * shape. Delivers `remaining` edges in trains of up to kChunk,
 * re-arming the next chunk from within the last edge's delivery.
 */
struct TrainTickDriver final : sim::EdgeSink
{
    static constexpr std::uint32_t kChunk = 1024;

    sim::Simulator *sim = nullptr;
    std::uint64_t remaining = 0;
    std::uint32_t chunkLeft = 0;

    void
    arm()
    {
        chunkLeft = remaining < kChunk
                        ? static_cast<std::uint32_t>(remaining)
                        : kChunk;
        sim->scheduleEdgeTrain(1000, 1000, chunkLeft, *this, true);
    }

    void
    onEdge(bool) override
    {
        --remaining;
        if (--chunkLeft == 0 && remaining > 0)
            arm();
    }
};

/**
 * A kHops-hop forwarding ring of Nets driven rhythmically (one edge
 * per half-period, the forwarded CLK broadcast shape), with or
 * without net-level edge-train batching.
 */
struct ForwardRing
{
    static constexpr int kHops = 14;
    static constexpr std::uint32_t kNetTrainLen = 64;
    static constexpr sim::SimTime kHalfPeriod =
        1250 * sim::kNanosecond;

    sim::Simulator simulator;
    std::vector<std::unique_ptr<wire::Net>> nets;

    struct Forwarder final : wire::EdgeListener
    {
        wire::Net *next = nullptr;
        void onNetEdge(wire::Net &, bool v) override { next->drive(v); }
    };
    std::vector<Forwarder> fwd{kHops - 1};

    struct Driver final : sim::EdgeSink
    {
        wire::Net *head = nullptr;
        void onEdge(bool v) override { head->drive(v); }
    } driver;

    explicit ForwardRing(bool trains)
    {
        nets.reserve(kHops);
        for (int i = 0; i < kHops; ++i) {
            nets.push_back(std::make_unique<wire::Net>(
                simulator, "hop" + std::to_string(i),
                10 * sim::kNanosecond, true));
            if (trains)
                nets.back()->enableEdgeTrains(kNetTrainLen);
        }
        for (int i = 0; i + 1 < kHops; ++i) {
            fwd[static_cast<std::size_t>(i)].next = nets[i + 1].get();
            nets[i]->listen(wire::Edge::Any, fwd[i]);
        }
        driver.head = nets[0].get();
    }

    /** Drive @p edges rhythmic edges into hop 0 and run to idle. */
    void
    pump(std::uint32_t edges, bool firstValue = false)
    {
        simulator.scheduleEdgeTrain(kHalfPeriod, kHalfPeriod, edges,
                                    driver, firstValue);
        simulator.run();
    }

    /** Kernel events retired per delivered edge so far. */
    double
    eventsPerEdge(std::uint64_t edges) const
    {
        return static_cast<double>(simulator.eventsExecuted()) /
               (static_cast<double>(edges) * kHops);
    }
};

} // namespace benchutil
} // namespace mbus

#endif // MBUS_BENCH_BENCH_UTIL_HH
