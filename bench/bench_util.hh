/**
 * @file
 * Small shared helpers for the reproduction benches: consistent
 * headers and number formatting so every bench prints paper-style
 * rows that EXPERIMENTS.md can quote directly.
 */

#ifndef MBUS_BENCH_BENCH_UTIL_HH
#define MBUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/fsio.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sweep/scenario.hh"
#include "wire/net.hh"

namespace mbus {
namespace benchutil {

inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("==============================================="
                "=====================\n");
}

inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/**
 * Append one single-line JSON object to the "runs" history array of
 * @p path, preserving every other byte of the file (bench_kernel's
 * top-level record, earlier history entries). A missing or empty
 * file gets a minimal {"runs": [...]} skeleton; an existing file
 * without a recognizable "runs" array is left untouched (returns
 * false) rather than clobbered, so cross-bench histories
 * (bench_kernel, workload_mix) accumulate in the same trajectory
 * file.
 *
 * @return false if the file could not be written or was unparseable.
 */
inline bool
appendRunEntry(const std::string &path, const std::string &entry)
{
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (in && std::getline(in, line))
            lines.push_back(line);
    }
    // Find the "runs" array and its closing bracket. History entries
    // are one object per line, so the array closes on the first line
    // after "runs": [ whose first non-space character is ']'.
    std::size_t runsAt = lines.size();
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].find("\"runs\": [") != std::string::npos) {
            runsAt = i;
            break;
        }
    }
    if (runsAt == lines.size()) {
        if (!lines.empty())
            return false; // Unrecognized layout; refuse to clobber.
        return sim::atomicWriteFile(
            path, "{\n  \"runs\": [\n    " + entry + "\n  ]\n}\n");
    }
    std::size_t closeAt = lines.size();
    bool hasEntries = false;
    for (std::size_t i = runsAt + 1; i < lines.size(); ++i) {
        std::size_t ns = lines[i].find_first_not_of(" \t");
        if (ns != std::string::npos && lines[i][ns] == ']') {
            closeAt = i;
            break;
        }
        if (ns != std::string::npos)
            hasEntries = true;
    }
    if (closeAt == lines.size())
        return false; // Malformed; refuse to rewrite.
    if (hasEntries) {
        // Terminate the previous entry with a comma.
        std::string &prev = lines[closeAt - 1];
        std::size_t end = prev.find_last_not_of(" \t");
        if (end != std::string::npos && prev[end] != ',')
            prev.insert(end + 1, ",");
    }
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(closeAt),
                 "    " + entry);
    // Rewriting history in place: go through the temp-file + atomic
    // rename path so a kill mid-write can never eat the trajectory.
    return sim::atomicWriteFile(path, [&](std::ostream &out) {
        for (const std::string &l : lines)
            out << l << "\n";
    });
}

/** The five backend fabrics, in the cyclic order the smoke grids
 *  assign them (cell i runs on fabric i % 5). */
constexpr backend::BackendKind kFiveFabrics[] = {
    backend::BackendKind::Mbus,      backend::BackendKind::I2cStd,
    backend::BackendKind::I2cOracle, backend::BackendKind::Bitbang,
    backend::BackendKind::Firmware,
};

/** The fault recipe the smoke grids draw per cell: 1-3 events of any
 *  kind, compressed into the first ~1.5 ms (the fastest fabrics idle
 *  down in a couple of ms; an event drawn past idle-down never
 *  fires), under a 32-epoch watchdog. */
inline fault::FaultSpec
smokeFaults(sim::Random &rng)
{
    fault::FaultSpec fs;
    fs.name = "smoke";
    fs.watchdogEpochs = 32;
    std::size_t entries = 1 + rng.below(3);
    for (std::size_t j = 0; j < entries; ++j) {
        fault::FaultEntry e;
        e.kind = static_cast<fault::FaultKind>(rng.below(6));
        e.count = 1 + static_cast<int>(rng.below(2));
        e.startS = 0.0;
        e.endS = 1.5e-3;
        e.durationS = 1e-4 + 9e-4 * rng.uniform();
        e.jitterFrac = 0.3;
        e.pulses = 1 + static_cast<int>(rng.below(4));
        e.driftFrac = 0.05;
        fs.entries.push_back(e);
    }
    return fs;
}

/**
 * The CI faulty five-fabric grid: @p cells scenarios cycling through
 * all five fabrics with randomized-but-seeded topology, traffic,
 * faults, and retry policies. One generator, two gates: fault_smoke
 * checks in-process shard determinism on it, fleet_smoke checks
 * multi-process byte identity on the very same cells -- the grids
 * must stay byte-identical or the two gates drift apart.
 */
inline std::vector<sweep::ScenarioSpec>
faultyFiveFabricGrid(std::size_t cells = 25,
                     const std::string &namePrefix = "fault_smoke")
{
    sim::Random rng(0xFA17CE11ULL);
    std::vector<sweep::ScenarioSpec> grid;
    for (std::size_t i = 0; i < cells; ++i) {
        sweep::ScenarioSpec s;
        s.name = namePrefix + std::to_string(i);
        s.backend = kFiveFabrics[i % 5];
        s.nodes = static_cast<int>(rng.between(3, 6));
        s.payloadBytes = rng.below(9);
        s.messages = static_cast<int>(rng.between(2, 4));
        s.traffic = static_cast<sweep::TrafficPattern>(rng.below(4));
        s.powerGated = rng.chance(0.3);
        s.faults = smokeFaults(rng);
        s.retry.maxRetries = static_cast<int>(rng.below(3));
        s.retry.backoffEpochs = 8;
        grid.push_back(std::move(s));
    }
    return grid;
}

/**
 * The canonical sensing+imaging+storm application mix (the paper's
 * system rhythm: a duty-cycled temperature-style sensor, a
 * frame-burst imager, control-plane chatter at the mediator host,
 * under a third-party interjection storm). Shared by workload_mix
 * (the bench that documents it) and perf_gate (the regression
 * baseline that must measure the identical cell).
 *
 * @param nodes Ring population (>= 3; sensor on 1, imager on 2).
 * @param clockHz Bus clock.
 * @param stormFrac Fraction of the run covered by the storm window
 *        (0 disables it).
 * @param smoke CI-sized: 12 s of sim with proportionally faster
 *        actors instead of the full 90 s / 1 Hz / 30 s-burst mix.
 */
inline sweep::ScenarioSpec
canonicalWorkloadCell(int nodes, double clockHz, double stormFrac,
                      bool smoke)
{
    sweep::ScenarioSpec s;
    s.nodes = nodes;
    s.busClockHz = clockHz;
    s.powerGated = true;
    s.name = "mix_n" + std::to_string(nodes);

    workload::WorkloadSpec &w = s.workload;
    w.name = "sense_image_storm";
    w.durationS = smoke ? 12.0 : 90.0;

    // Periodic sensor @ 1 Hz duty cycle (8-byte samples to the
    // gateway), jittered like a real RC-timed wakeup.
    workload::ActorSpec sensor;
    sensor.kind = workload::ActorKind::PeriodicSensor;
    sensor.name = "sensor";
    sensor.node = 1;
    sensor.dest = 0;
    sensor.periodS = smoke ? 0.25 : 1.0;
    sensor.jitterFrac = 0.1;
    sensor.payloadBytes = 8;
    w.actors.push_back(sensor);

    // 4 KB imager burst every 30 s, 128-byte fragments.
    workload::ActorSpec imager;
    imager.kind = workload::ActorKind::BurstImager;
    imager.name = "imager";
    imager.node = 2;
    imager.dest = 0;
    imager.periodS = smoke ? 4.0 : 30.0;
    imager.payloadBytes = 128;
    imager.burstBytes = 4096;
    imager.startS = smoke ? 0.5 : 2.0;
    w.actors.push_back(imager);

    // Mediator-host-targeted control traffic (priority).
    workload::ActorSpec control;
    control.kind = workload::ActorKind::ControlPlane;
    control.name = "control";
    control.node = nodes - 1;
    control.dest = 0;
    control.periodS = smoke ? 1.0 : 5.0;
    control.payloadBytes = 4;
    control.priority = true;
    w.actors.push_back(control);

    if (stormFrac > 0) {
        workload::ScheduleSpec storm;
        storm.kind = workload::ScheduleKind::InterjectionStorm;
        storm.atS = 0.45 * w.durationS;
        storm.durationS = stormFrac * w.durationS;
        storm.rateHz = smoke ? 25.0 : 4.0;
        w.schedules.push_back(storm);
    }
    return s;
}

// --- Shared edge-train workload harnesses ---------------------------
//
// bench_kernel (wall-clock throughput) and perf_gate (deterministic
// events/bit regression gate) must measure the *same* workloads, or
// the checked-in baseline silently drifts away from what the bench
// documents. Both build on these.

/**
 * Chunked self-train tick driver: the mediator's clock-generation
 * shape. Delivers `remaining` edges in trains of up to kChunk,
 * re-arming the next chunk from within the last edge's delivery.
 */
struct TrainTickDriver final : sim::EdgeSink
{
    static constexpr std::uint32_t kChunk = 1024;

    sim::Simulator *sim = nullptr;
    std::uint64_t remaining = 0;
    std::uint32_t chunkLeft = 0;

    void
    arm()
    {
        chunkLeft = remaining < kChunk
                        ? static_cast<std::uint32_t>(remaining)
                        : kChunk;
        sim->scheduleEdgeTrain(1000, 1000, chunkLeft, *this, true);
    }

    void
    onEdge(bool) override
    {
        --remaining;
        if (--chunkLeft == 0 && remaining > 0)
            arm();
    }
};

/**
 * A kHops-hop forwarding ring of Nets driven rhythmically (one edge
 * per half-period, the forwarded CLK broadcast shape), with or
 * without net-level edge-train batching.
 */
struct ForwardRing
{
    static constexpr int kHops = 14;
    static constexpr std::uint32_t kNetTrainLen = 64;
    static constexpr sim::SimTime kHalfPeriod =
        1250 * sim::kNanosecond;

    sim::Simulator simulator;
    std::vector<std::unique_ptr<wire::Net>> nets;

    struct Forwarder final : wire::EdgeListener
    {
        wire::Net *next = nullptr;
        void onNetEdge(wire::Net &, bool v) override { next->drive(v); }
    };
    std::vector<Forwarder> fwd{kHops - 1};

    struct Driver final : sim::EdgeSink
    {
        wire::Net *head = nullptr;
        void onEdge(bool v) override { head->drive(v); }
    } driver;

    explicit ForwardRing(bool trains)
    {
        nets.reserve(kHops);
        for (int i = 0; i < kHops; ++i) {
            nets.push_back(std::make_unique<wire::Net>(
                simulator, "hop" + std::to_string(i),
                10 * sim::kNanosecond, true));
            if (trains)
                nets.back()->enableEdgeTrains(kNetTrainLen);
        }
        for (int i = 0; i + 1 < kHops; ++i) {
            fwd[static_cast<std::size_t>(i)].next = nets[i + 1].get();
            nets[i]->listen(wire::Edge::Any, fwd[i]);
        }
        driver.head = nets[0].get();
    }

    /** Drive @p edges rhythmic edges into hop 0 and run to idle. */
    void
    pump(std::uint32_t edges, bool firstValue = false)
    {
        simulator.scheduleEdgeTrain(kHalfPeriod, kHalfPeriod, edges,
                                    driver, firstValue);
        simulator.run();
    }

    /** Kernel events retired per delivered edge so far. */
    double
    eventsPerEdge(std::uint64_t edges) const
    {
        return static_cast<double>(simulator.eventsExecuted()) /
               (static_cast<double>(edges) * kHops);
    }
};

} // namespace benchutil
} // namespace mbus

#endif // MBUS_BENCH_BENCH_UTIL_HH
