/**
 * @file
 * Regenerates Table 3 (measured MBus power draw) from the edge-level
 * simulator, mirroring the paper's measurement: the 3-chip
 * temperature system in a continuous message loop, with per-role
 * energy extracted by differencing node totals.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "mbus/system.hh"
#include "power/constants.hh"
#include "sim/random.hh"

using namespace mbus;

int
main()
{
    benchutil::banner(
        "Table 3: Measured MBus Power Draw (pJ/bit by role)",
        "Pannuto et al., ISCA'15, Table 3 + Sec 6.2");

    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    for (int i = 0; i < 3; ++i) {
        bus::NodeConfig cfg;
        cfg.name = i == 0 ? "proc+mediator"
                          : (i == 1 ? "sensor" : "radio");
        cfg.fullPrefix = 0x100u + static_cast<std::uint32_t>(i);
        cfg.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        cfg.powerGated = i != 0;
        system.addNode(cfg);
    }
    system.finalize();

    // Continuous loop of 8-byte messages: proc -> sensor, radio
    // forwards (the paper's differential measurement setup).
    sim::Random rng(2015);
    const int kMessages = 100;
    std::uint64_t cycles = 0;
    for (int i = 0; i < kMessages; ++i) {
        bus::Message msg;
        msg.dest = bus::Address::shortAddr(2, bus::kFuMailbox);
        msg.payload.resize(8);
        for (auto &b : msg.payload)
            b = rng.byte();
        cycles += msg.totalCycles();
        auto r = system.sendAndWait(0, msg, sim::kSecond);
        if (!r || r->status != bus::TxStatus::Ack) {
            std::printf("unexpected TX failure\n");
            return 1;
        }
        system.runUntilIdle(sim::kSecond);
    }

    auto &ledger = system.ledger();
    double c = static_cast<double>(cycles);
    double tx_sim = ledger.nodeTotal(0) / c;
    double rx_sim = ledger.nodeTotal(1) / c;
    double fwd_sim = ledger.nodeTotal(2) / c;
    double avg_sim = (tx_sim + rx_sim + fwd_sim) / 3.0;
    double to_meas = power::kMeasuredOverheadFactor;

    std::printf("\n(%d messages x 8 B; %llu bus cycles; energies "
                "from counted wire/pad/flop transitions)\n\n",
                kMessages, static_cast<unsigned long long>(cycles));

    std::printf("%-34s %12s %12s %10s\n", "Role", "ours[pJ/bit]",
                "paper[pJ/bit]", "error");
    auto row = [&](const char *role, double sim_j, double paper_meas) {
        double meas = sim_j * to_meas;
        std::printf("%-34s %12.2f %13.2f %9.1f%%\n", role, meas * 1e12,
                    paper_meas * 1e12,
                    100.0 * (meas - paper_meas) / paper_meas);
    };
    row("Member+Mediator Node sending", tx_sim, power::kMeasuredTxJ);
    row("Member Node receiving", rx_sim, power::kMeasuredRxJ);
    row("Member Node forwarding", fwd_sim, power::kMeasuredFwdJ);
    row("Average", avg_sim, power::kMeasuredAvgJ);

    benchutil::section("Simulation scale (Sec 6.2)");
    std::printf("ours: %.2f pJ/bit/chip   paper (PrimeTime): 3.50 "
                "pJ/bit/chip\n", avg_sim * 1e12);
    std::printf("idle leakage model: %.1f pW/chip   paper: 5.6 "
                "pW/chip\n", power::kIdleLeakagePerChipW * 1e12);

    benchutil::section("Energy decomposition (per node, whole run)");
    system.ledger().report(std::cout);
    return 0;
}
