/**
 * @file
 * Regenerates the Section 6.3.2 "monitor and alert" microbenchmark:
 * the motion-activated imager. Computes the row-wise vs single-
 * message overhead table and runs a scaled image transfer (plus the
 * motion-detector wakeup) through the edge-level simulator.
 */

#include <cstdio>

#include "analysis/overhead.hh"
#include "bench/bench_util.hh"
#include "mbus/system.hh"
#include "sim/random.hh"

using namespace mbus;

int
main()
{
    benchutil::banner(
        "Sec 6.3.2 microbenchmark: Motion Detection and Imaging",
        "Pannuto et al., ISCA'15, Sec 6.3.2 (160x160 9-bit imager)");

    benchutil::section("Image transfer overhead (28.8 kB image)");
    analysis::ImageTransferOverhead o =
        analysis::imageTransferOverhead(160, 180);
    std::printf("MBus single message:  %8zu overhead bits\n",
                o.mbusSingleBits);
    std::printf("MBus 160 row messages:%8zu overhead bits "
                "(+%zu = %.2f%%; paper: 3,021 = 1.31%%)\n",
                o.mbusRowBits, o.mbusExtraBits, o.mbusRowPercent);
    std::printf("I2C single message:   %8zu overhead bits (%.1f%%; "
                "paper: 28,810 = 12.5%%)\n",
                o.i2cSingleBits, o.i2cSinglePercent);
    std::printf("I2C row-by-row:       %8zu overhead bits (%.1f%%; "
                "paper: 30,400 = 13.2%%)\n",
                o.i2cRowBits, o.i2cRowPercent);
    double reduction = 100.0 * (1.0 - double(o.mbusRowBits) /
                                          double(o.i2cRowBits));
    std::printf("message-level vs byte-level ACK overhead "
                "reduction: %.0f%% (paper: 90-99%%)\n", reduction);

    benchutil::section("Transfer time vs clock (Sec 6.3.2)");
    for (double hz : {10e3, 400e3, 6.67e6}) {
        double cycles = 160.0 * (19 + 8 * 180);
        double seconds = cycles / hz;
        std::printf("  %7.2f kHz: full image %7.1f ms (%5.1f fps)\n",
                    hz / 1e3, seconds * 1e3, 1.0 / seconds);
    }
    std::printf("  (paper: 4.2 ms / 238 fps at max clock; 2.9 s / "
                "0.3 fps at 10 kHz, single-message framing)\n");

    benchutil::section("Edge-level simulation: motion wake + scaled "
                       "image (16 rows x 180 B)");
    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    const char *names[3] = {"proc", "imager", "radio"};
    for (int i = 0; i < 3; ++i) {
        bus::NodeConfig nc;
        nc.name = names[i];
        nc.fullPrefix = 0x900u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = i != 0;
        system.addNode(nc);
    }
    system.finalize();

    bus::Node &imager = system.node(1);
    const int kRows = 16;
    const int kRowBytes = 180;
    sim::Random rng(160);

    int rows_rx = 0;
    std::size_t bytes_rx = 0;
    system.node(0).layer().setMailboxHandler(
        [&](const bus::ReceivedMessage &rx) {
            ++rows_rx;
            bytes_rx += rx.payload.size();
        });

    // The always-on motion detector asserts one wire; MBus wakes the
    // imager, whose firmware streams the rows.
    int rows_sent = 0;
    std::function<void()> send_row = [&] {
        bus::Message row;
        row.dest = bus::Address::shortAddr(1, bus::kFuMailbox);
        row.payload.resize(kRowBytes);
        for (auto &b : row.payload)
            b = rng.byte();
        imager.send(row, [&](const bus::TxResult &) {
            if (++rows_sent < kRows)
                send_row();
        });
    };
    imager.busController().setInterruptCallback([&] { send_row(); });

    std::printf("imager asleep: bus_ctrl=%s layer=%s\n",
                imager.busDomain().off() ? "yes" : "no",
                imager.layerDomain().off() ? "yes" : "no");
    sim::SimTime start = simulator.now();
    imager.assertInterrupt(); // Motion!

    simulator.runUntil([&] { return rows_rx == kRows; },
                       60 * sim::kSecond);
    system.runUntilIdle(sim::kSecond);

    double elapsed = sim::toSeconds(simulator.now() - start);
    std::printf("motion -> %d rows (%zu bytes) delivered in %.2f ms "
                "at 400 kHz\n", rows_rx, bytes_rx, elapsed * 1e3);
    std::printf("bus energy: %.1f nJ (simulated scale); imager "
                "wakeups: layer=%llu\n",
                system.ledger().total() * 1e9,
                static_cast<unsigned long long>(
                    imager.layerDomain().wakeupCount()));
    double ideal =
        kRows * (19.0 + 8.0 * kRowBytes) / 400e3 * 1e3;
    std::printf("closed-form transfer time: %.2f ms (difference = "
                "per-message wakeup/idle cycles)\n", ideal);
    return 0;
}
