/**
 * @file
 * CI smoke for the workload engine: a small application mix run
 * through the sweep driver on 2 worker threads, re-run
 * single-threaded, with the byte-identity property checked
 * end-to-end (CSV + JSON + fingerprint, per-actor columns included)
 * and every cell's health asserted. Exits non-zero on divergence,
 * wedge, corruption, or a silent mix (no samples delivered), so CI
 * fails the PR -- the workload twin of sweep_smoke.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    const char *out = "workload_smoke.csv";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];

    benchutil::banner(
        "Workload smoke: 2-thread vs 1-thread byte identity on a "
        "small mix",
        "workload engine self-check (CI gate)");

    // A compact grid still covering storm, fault and gating paths.
    std::vector<sweep::ScenarioSpec> grid;
    for (int nodes : {3, 5}) {
        for (double storm : {0.0, 0.15}) {
            sweep::ScenarioSpec s = benchutil::canonicalWorkloadCell(
                nodes, 400e3, storm, /*smoke=*/true);
            s.workload.durationS = 4.0;
            s.name += storm > 0 ? "_storm" : "_quiet";
            s.captureVcd = true;

            workload::ScheduleSpec fault;
            fault.kind = workload::ScheduleKind::NodeFault;
            fault.atS = 1.0;
            fault.durationS = 0.5;
            s.workload.schedules.push_back(fault);

            workload::ScheduleSpec gate;
            gate.kind = workload::ScheduleKind::PowerGateWindow;
            gate.node = 1;
            gate.atS = 2.0;
            gate.durationS = 0.4;
            s.workload.schedules.push_back(gate);
            grid.push_back(std::move(s));
        }
    }

    sweep::SweepConfig sharded;
    sharded.threads = 2;
    sweep::SweepConfig solo;
    solo.threads = 1;
    sweep::SweepResult a = sweep::SweepDriver(sharded).run(grid);
    sweep::SweepResult b = sweep::SweepDriver(solo).run(grid);

    std::ostringstream csvA, csvB, jsonA, jsonB;
    a.writeCsv(csvA);
    b.writeCsv(csvB);
    a.writeJson(jsonA);
    b.writeJson(jsonB);
    bool identical = csvA.str() == csvB.str() &&
                     jsonA.str() == jsonB.str() &&
                     a.fingerprint() == b.fingerprint();

    sweep::SweepAggregate agg = a.aggregate();
    std::printf("cells=%llu planned=%llu acked=%llu samples=%llu/%llu "
                "missed=%llu faults=%llu mismatches=%llu wedged=%llu\n",
                static_cast<unsigned long long>(agg.cells),
                static_cast<unsigned long long>(agg.planned),
                static_cast<unsigned long long>(agg.acked),
                static_cast<unsigned long long>(agg.samplesDelivered),
                static_cast<unsigned long long>(agg.samplesPlanned),
                static_cast<unsigned long long>(agg.missedDeadlines),
                static_cast<unsigned long long>(agg.faultsInjected),
                static_cast<unsigned long long>(agg.mismatches),
                static_cast<unsigned long long>(agg.wedgedCells));
    std::printf("fingerprint=%016llx (2 threads) vs %016llx (1 "
                "thread): %s\n",
                static_cast<unsigned long long>(a.fingerprint()),
                static_cast<unsigned long long>(b.fingerprint()),
                identical ? "IDENTICAL" : "DIVERGED");
    std::printf("wall: %.3f s across %zu cells (2 threads)\n",
                a.totalWallSeconds(), a.size());

    std::ofstream os(out);
    a.writeCsv(os, /*includeWallTime=*/true);
    std::printf("wrote %s\n", out);

    bool healthy = agg.mismatches == 0 && agg.wedgedCells == 0 &&
                   agg.samplesDelivered > 0 &&
                   agg.planned == agg.acked + agg.naked +
                                      agg.broadcasts + agg.interrupted +
                                      agg.rxAborts + agg.failed;
    if (!identical || !healthy) {
        std::printf("WORKLOAD SMOKE FAILED\n");
        return 1;
    }
    std::printf("WORKLOAD SMOKE OK\n");
    return 0;
}
