/**
 * @file
 * Regenerates Figure 9: maximum MBus clock vs node count.
 *
 * Prints the paper's one-hop-per-node-per-period curve (7.1 MHz at
 * 14 nodes) alongside our simulator's conservative settle-before-
 * latch limit, and validates the latter by running real messages at
 * the limit frequency for each population.
 */

#include <cstdio>

#include "analysis/frequency.hh"
#include "bench/bench_util.hh"
#include "mbus/system.hh"

using namespace mbus;

namespace {

/** Run one message end-to-end at @p hz with @p nodes; true if ACKed
 *  and intact. */
bool
validateAtFrequency(int nodes, double hz)
{
    sim::Simulator simulator;
    bus::SystemConfig cfg;
    cfg.busClockHz = hz;
    bus::MBusSystem system(simulator, cfg);
    for (int i = 0; i < nodes; ++i) {
        bus::NodeConfig nc;
        nc.name = "n" + std::to_string(i);
        nc.fullPrefix = 0x200u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();

    std::vector<std::uint8_t> seen;
    system.node(static_cast<std::size_t>(nodes - 1))
        .layer()
        .setMailboxHandler(
            [&](const bus::ReceivedMessage &rx) { seen = rx.payload; });

    bus::Message msg;
    msg.dest = bus::Address::shortAddr(
        static_cast<std::uint8_t>(nodes), bus::kFuMailbox);
    msg.payload = {0xA5, 0x5A, 0xC3, 0x3C};
    // Send from a plain member when one exists (exercises the CLK
    // ring-break end-of-message path); in a 2-node ring node 0 is
    // the only non-destination sender.
    std::size_t sender = nodes >= 3 ? 1 : 0;
    auto r = system.sendAndWait(sender, msg, sim::kSecond);
    system.runUntilIdle(sim::kSecond);
    return r && r->status == bus::TxStatus::Ack &&
           seen == msg.payload;
}

} // namespace

int
main()
{
    benchutil::banner("Figure 9: Maximum MBus Clock vs Node Count",
                      "Pannuto et al., ISCA'15, Fig 9 (10 ns/hop)");

    std::printf("%6s %18s %24s %10s\n", "nodes", "paper fmax [MHz]",
                "conservative fmax [MHz]", "sim check");
    for (int n = 2; n <= 14; ++n) {
        double paper = analysis::paperMaxClockHz(n) / 1e6;
        double cons = analysis::conservativeMaxClockHz(n) / 1e6;
        bool ok = validateAtFrequency(n, cons * 1e6 * 0.999);
        std::printf("%6d %18.2f %24.2f %10s\n", n, paper, cons,
                    ok ? "ACK" : "FAIL");
    }

    std::printf("\nPaper anchors: 14 nodes -> 7.1 MHz; 2 nodes -> 50 "
                "MHz.\n");
    std::printf("The conservative column is our edge-level "
                "simulator's functional limit (a bit driven on a "
                "falling edge must settle at wrap-around receivers "
                "before the rising-edge latch); see EXPERIMENTS.md "
                "for the discussion of the factor-~2 gap.\n");
    return 0;
}
