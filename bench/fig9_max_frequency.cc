/**
 * @file
 * Regenerates Figure 9: maximum MBus clock vs node count.
 *
 * Prints the paper's one-hop-per-node-per-period curve (7.1 MHz at
 * 14 nodes) alongside our simulator's conservative settle-before-
 * latch limit, and validates the latter by running real messages at
 * the limit frequency for each population.
 *
 * The 13 validation cells run as one sharded sweep through the
 * SweepDriver (one independent Simulator+MBusSystem per cell), which
 * also reports per-cell wall time.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/frequency.hh"
#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    bool progress = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--progress") == 0)
            progress = true;

    benchutil::banner("Figure 9: Maximum MBus Clock vs Node Count",
                      "Pannuto et al., ISCA'15, Fig 9 (10 ns/hop)");

    // One validation cell per ring population: a real 4-byte message
    // at 99.9% of the conservative limit frequency must be delivered
    // intact and ACKed.
    std::vector<sweep::ScenarioSpec> grid;
    for (int n = 2; n <= 14; ++n) {
        sweep::ScenarioSpec s;
        s.name = "fig9_n" + std::to_string(n);
        s.nodes = n;
        s.busClockHz = analysis::conservativeMaxClockHz(n) * 0.999;
        s.traffic = sweep::TrafficPattern::SingleSender;
        s.messages = 1;
        s.payloadBytes = 4;
        grid.push_back(std::move(s));
    }
    sweep::SweepConfig cfg;
    cfg.threads = 4;
    if (progress)
        cfg.progress = sweep::stderrProgress();
    sweep::SweepResult result = sweep::SweepDriver(cfg).run(grid);

    std::printf("%6s %18s %24s %10s %12s\n", "nodes",
                "paper fmax [MHz]", "conservative fmax [MHz]",
                "sim check", "cell [ms]");
    for (const sweep::CellResult &cell : result.cells()) {
        int n = cell.spec.nodes;
        bool ok = !cell.stats.wedged && cell.stats.acked == 1 &&
                  cell.stats.payloadMismatches == 0 &&
                  cell.stats.bytesDelivered == 4;
        std::printf("%6d %18.2f %24.2f %10s %12.3f\n", n,
                    analysis::paperMaxClockHz(n) / 1e6,
                    analysis::conservativeMaxClockHz(n) / 1e6,
                    ok ? "ACK" : "FAIL", cell.wallSeconds * 1e3);
    }
    std::printf("sweep total: %zu cells, %.3f s cell wall time\n",
                result.size(), result.totalWallSeconds());

    std::printf("\nPaper anchors: 14 nodes -> 7.1 MHz; 2 nodes -> 50 "
                "MHz.\n");
    std::printf("The conservative column is our edge-level "
                "simulator's functional limit (a bit driven on a "
                "falling edge must settle at wrap-around receivers "
                "before the rising-edge latch); see EXPERIMENTS.md "
                "for the discussion of the factor-~2 gap.\n");
    return 0;
}
