/**
 * @file
 * Regenerates Figure 11: (a) total bus power vs clock frequency and
 * (b) energy per goodput bit vs payload length, for standard I2C,
 * Oracle I2C, and MBus (simulated and measured scales) at 2 and 14
 * nodes -- then (c) re-derives the comparison *dynamically* by
 * running one application mix through the shared backend harness on
 * every fabric (hardware MBus, transactional I2C std/oracle, and the
 * bit-banged mixed ring) and appends the measured numbers to the
 * BENCH_kernel.json runs[] trajectory.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "analysis/energy_model.hh"
#include "baseline/i2c.hh"
#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;
using namespace mbus::analysis;

int
main(int argc, char **argv)
{
    std::string outPath = "BENCH_kernel.json";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0)
            outPath = argv[i + 1];
    benchutil::banner(
        "Figure 11: Energy Comparisons (MBus vs I2C variants)",
        "Pannuto et al., ISCA'15, Fig 11a/11b + Sec 6.2");

    baseline::I2cModel std_i2c(50e-12, 1.2,
                               baseline::I2cSizing::Standard);
    auto oracle2 =
        baseline::I2cModel::forNodeCount(2, baseline::I2cSizing::Oracle);
    auto oracle14 = baseline::I2cModel::forNodeCount(
        14, baseline::I2cSizing::Oracle);

    benchutil::section("(a) Total bus power draw [uW] vs clock "
                       "frequency [MHz]");
    std::printf("%6s %12s %12s %12s %12s %12s %12s %12s\n", "MHz",
                "I2C@50pF", "Oracle14", "MBus14meas", "Oracle2",
                "MBus2meas", "MBus14sim", "MBus2sim");
    for (double mhz : {0.1, 0.4, 1.0, 2.0, 4.0, 6.0, 7.1, 8.0}) {
        double f = mhz * 1e6;
        std::printf(
            "%6.1f %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f\n",
            mhz, std_i2c.totalPowerW(f) * 1e6,
            oracle14.totalPowerW(f) * 1e6,
            mbusPowerW(f, 14, EnergyScale::Measured) * 1e6,
            oracle2.totalPowerW(f) * 1e6,
            mbusPowerW(f, 2, EnergyScale::Measured) * 1e6,
            mbusPowerW(f, 14, EnergyScale::Simulated) * 1e6,
            mbusPowerW(f, 2, EnergyScale::Simulated) * 1e6);
    }
    std::printf("(Standard I2C rows above its ~1 MHz legal range "
                "extrapolate the fixed 300 ns rise sizing.)\n");

    benchutil::section("(b) Energy per goodput bit [pJ] vs payload "
                       "[bytes] at 400 kHz");
    std::printf("%6s %12s %12s %12s %12s %12s %12s %12s\n", "bytes",
                "I2C@50pF", "Oracle14", "MBus14meas", "Oracle2",
                "MBus2meas", "MBus14sim", "MBus2sim");
    for (std::size_t n = 1; n <= 12; ++n) {
        std::printf(
            "%6zu %12.0f %12.0f %12.0f %12.0f %12.0f %12.0f %12.0f\n",
            n, std_i2c.energyPerGoodputBitJ(n, 400e3) * 1e12,
            oracle14.energyPerGoodputBitJ(n, 400e3) * 1e12,
            mbusEnergyPerGoodputBitJ(n, 14, false,
                                     EnergyScale::Measured) *
                1e12,
            oracle2.energyPerGoodputBitJ(n, 400e3) * 1e12,
            mbusEnergyPerGoodputBitJ(n, 2, false,
                                     EnergyScale::Measured) *
                1e12,
            mbusEnergyPerGoodputBitJ(n, 14, false,
                                     EnergyScale::Simulated) *
                1e12,
            mbusEnergyPerGoodputBitJ(n, 2, false,
                                     EnergyScale::Simulated) *
                1e12);
    }

    benchutil::section("Shape checks (paper claims)");
    bool sim_wins_everywhere = true;
    for (std::size_t n = 1; n <= 12; ++n) {
        if (mbusEnergyPerGoodputBitJ(n, 14, false,
                                     EnergyScale::Simulated) >=
            oracle14.energyPerGoodputBitJ(n, 400e3)) {
            sim_wins_everywhere = false;
        }
    }
    std::size_t meas_crossover = 0;
    for (std::size_t n = 1; n <= 12; ++n) {
        if (mbusEnergyPerGoodputBitJ(n, 14, false,
                                     EnergyScale::Measured) <
            oracle14.energyPerGoodputBitJ(n, 400e3)) {
            meas_crossover = n;
            break;
        }
    }
    std::printf("simulated MBus beats Oracle I2C at every length: "
                "%s (paper: yes)\n",
                sim_wins_everywhere ? "yes" : "NO");
    std::printf("measured MBus overtakes Oracle I2C from %zu bytes "
                "(paper: suffers only for 1-2 byte messages)\n",
                meas_crossover);
    std::printf("=> systems should coalesce short messages "
                "(Sec 6.2).\n");

    benchutil::section("Sec 2.1 pull-up decomposition (relaxed I2C, "
                       "50 pF, 400 kHz)");
    baseline::I2cModel relaxed(50e-12, 1.2,
                               baseline::I2cSizing::Oracle);
    std::printf("pull-up resistor:     %.1f kOhm (paper: 15.5)\n",
                relaxed.pullUpOhms(400e3) / 1e3);
    std::printf("charge dump:          %.0f pJ   (paper: 23)\n",
                relaxed.dumpEnergyJ() * 1e12);
    std::printf("resistor during rise: %.0f pJ   (paper: 35)\n",
                relaxed.chargeLossJ() * 1e12);
    std::printf("low-phase loss:       %.0f pJ  (paper: 116)\n",
                relaxed.lowPhaseLossJ(400e3) * 1e12);
    std::printf("clock power:          %.1f uW (paper: 69.6)\n",
                relaxed.clockPowerW(400e3) * 1e6);

    benchutil::section("(c) One workload, every fabric (shared "
                       "backend harness, sim scale)");
    std::vector<sweep::ScenarioSpec> grid;
    for (backend::BackendKind kind :
         {backend::BackendKind::Mbus, backend::BackendKind::I2cStd,
          backend::BackendKind::I2cOracle,
          backend::BackendKind::Bitbang}) {
        sweep::ScenarioSpec s = benchutil::canonicalWorkloadCell(
            /*nodes=*/3, /*clockHz=*/400e3, /*stormFrac=*/0.10,
            /*smoke=*/true);
        s.backend = kind;
        s.name = backend::backendKindName(kind);
        grid.push_back(std::move(s));
    }
    sweep::SweepResult result = sweep::SweepDriver().run(grid);

    std::printf("%-12s %14s %14s %14s %12s\n", "backend",
                "e/sample [J]", "lat_p50 [s]", "lat_p99 [s]",
                "lifetime [d]");
    bool healthy = true;
    for (const sweep::CellResult &c : result.cells()) {
        const sweep::ScenarioStats &s = c.stats;
        std::printf("%-12s %14.4e %14.4e %14.4e %12.2f\n",
                    c.spec.name.c_str(), s.energyPerSampleJ,
                    s.latencyP50S, s.latencyP99S, s.lifetimeDays);
        if (s.wedged || s.samplesDelivered == 0 ||
            s.payloadMismatches != 0)
            healthy = false;
    }
    const sweep::ScenarioStats &mb = result.cell(0).stats;
    const sweep::ScenarioStats &istd = result.cell(1).stats;
    const sweep::ScenarioStats &iora = result.cell(2).stats;
    const sweep::ScenarioStats &bb = result.cell(3).stats;
    bool ordering = mb.energyPerSampleJ < iora.energyPerSampleJ &&
                    iora.energyPerSampleJ < istd.energyPerSampleJ &&
                    istd.energyPerSampleJ < bb.energyPerSampleJ;
    std::printf("energy ordering MBus < Oracle I2C < standard I2C < "
                "bitbang: %s (paper: yes)\n",
                ordering ? "yes" : "NO");
    std::printf("MBus lifetime advantage over oracle I2C: %.1fx\n",
                iora.energyPerSampleJ / mb.energyPerSampleJ);

    std::ostringstream entry;
    entry << "{\"mode\": \"fig11_backends\", \"cells\": "
          << result.size();
    for (const sweep::CellResult &c : result.cells()) {
        const sweep::ScenarioStats &s = c.stats;
        entry << ", \"" << c.spec.name
              << "\": {\"energy_per_sample_j\": " << s.energyPerSampleJ
              << ", \"lat_p99_s\": " << s.latencyP99S
              << ", \"lifetime_days\": " << s.lifetimeDays
              << ", \"events_per_bit\": " << s.eventsPerBit << "}";
    }
    entry << "}";
    if (benchutil::appendRunEntry(outPath, entry.str()))
        std::printf("appended run entry to %s\n", outPath.c_str());
    else
        std::printf("WARN: could not update %s\n", outPath.c_str());

    if (!healthy || !ordering) {
        std::printf("FIG11 BACKEND COMPARISON FAILED\n");
        return 1;
    }
    return 0;
}
