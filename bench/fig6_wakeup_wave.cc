/**
 * @file
 * Regenerates Figure 6: the null-transaction wakeup. A power-gated
 * node's always-on interrupt controller pulls DATA low and resumes
 * forwarding before the arbitration edge; the mediator finds no
 * winner, raises a general error, and the edges generated along the
 * way walk the node's power-domain hierarchy awake.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "mbus/system.hh"
#include "sim/vcd.hh"

using namespace mbus;

int
main()
{
    benchutil::banner("Figure 6: MBus Wakeup (null transaction)",
                      "Pannuto et al., ISCA'15, Fig 6");

    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    bus::NodeConfig proc;
    proc.name = "proc";
    proc.fullPrefix = 0x600;
    proc.staticShortPrefix = 1;
    proc.powerGated = false;
    system.addNode(proc);

    bus::NodeConfig imager;
    imager.name = "imager";
    imager.fullPrefix = 0x601;
    imager.staticShortPrefix = 2;
    imager.powerGated = true;
    system.addNode(imager);
    system.finalize();

    sim::TraceRecorder rec;
    system.attachTrace(rec);

    bus::Node &node = system.node(1);
    std::printf("before: bus_ctrl=%s layer=%s\n",
                node.busDomain().off() ? "OFF" : "on",
                node.layerDomain().off() ? "OFF" : "on");

    bool serviced = false;
    node.busController().setInterruptCallback(
        [&] { serviced = true; });
    node.assertInterrupt();

    simulator.runUntil([&] { return serviced; }, sim::kSecond);
    system.runUntilIdle(sim::kSecond);

    sim::SimTime period =
        sim::periodFromHz(system.config().busClockHz);
    std::printf("\nWaveform, one cell = 1/8 bus cycle:\n\n");
    rec.renderAscii(std::cout, 0, 16 * period, period / 8);

    std::printf("\nafter: bus_ctrl=%s layer=%s  (wakeups: bus=%llu "
                "layer=%llu)\n",
                node.busDomain().active() ? "ACTIVE" : "off",
                node.layerDomain().active() ? "ACTIVE" : "off",
                static_cast<unsigned long long>(
                    node.busDomain().wakeupCount()),
                static_cast<unsigned long long>(
                    node.layerDomain().wakeupCount()));
    std::printf("mediator general errors: %llu (the \"General "
                "Error\" control code of Fig 6)\n",
                static_cast<unsigned long long>(
                    system.mediator().stats().generalErrors));
    std::printf("interrupt serviced without any message and without "
                "waking any other node.\n");

    std::ofstream vcd("fig6.vcd");
    rec.writeVcd(vcd);
    std::printf("full trace written to fig6.vcd\n");
    return 0;
}
