/**
 * @file
 * Regenerates Figure 15: parallel MBus goodput for 1-4 DATA wires at
 * a 400 kHz bus clock, from the closed form plus edge-level simulator
 * validation points using the actual lane-striping implementation.
 *
 * The 12 validation cells (3 payload sizes x 4 lane counts) run as
 * one sharded sweep through the SweepDriver, with per-cell wall time
 * reported.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/goodput.hh"
#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main()
{
    benchutil::banner(
        "Figure 15: Parallel MBus Goodput (400 kHz bus clock)",
        "Pannuto et al., ISCA'15, Fig 15 + Sec 7");

    std::printf("%6s %12s %12s %12s %12s\n", "bytes", "1 wire",
                "2 wires", "3 wires", "4 wires");
    for (std::size_t n = 0; n <= 128; n += 8) {
        std::printf("%6zu", n);
        for (int lanes = 1; lanes <= 4; ++lanes) {
            std::printf("%12.0f", analysis::parallelGoodputBps(
                                      400e3, n, lanes));
        }
        std::printf("\n");
    }

    const std::size_t kPayloads[] = {16, 64, 128};
    std::vector<sweep::ScenarioSpec> grid;
    for (std::size_t n : kPayloads) {
        for (int lanes = 1; lanes <= 4; ++lanes) {
            sweep::ScenarioSpec s;
            s.name = "fig15_b" + std::to_string(n) + "_w" +
                     std::to_string(lanes);
            s.nodes = 3;
            s.busClockHz = 400e3;
            s.dataLanes = lanes;
            s.traffic = sweep::TrafficPattern::SingleSender;
            s.messages = 10;
            s.payloadBytes = n;
            grid.push_back(std::move(s));
        }
    }
    sweep::SweepConfig cfg;
    cfg.threads = 4;
    sweep::SweepResult result = sweep::SweepDriver(cfg).run(grid);

    benchutil::section("Edge-level simulator validation (actual "
                       "lane-striped transfers, kbit/s)");
    std::printf("%6s %10s %10s %10s %10s   %s\n", "bytes", "1w", "2w",
                "3w", "4w", "cell wall [ms]");
    for (std::size_t row = 0; row < 3; ++row) {
        std::printf("%6zu", kPayloads[row]);
        for (int lanes = 1; lanes <= 4; ++lanes) {
            const sweep::CellResult &cell =
                result.cell(row * 4 + static_cast<std::size_t>(lanes) - 1);
            std::printf("%10.1f", cell.stats.goodputBps / 1e3);
        }
        std::printf("   ");
        for (int lanes = 1; lanes <= 4; ++lanes) {
            const sweep::CellResult &cell =
                result.cell(row * 4 + static_cast<std::size_t>(lanes) - 1);
            std::printf("%6.2f", cell.wallSeconds * 1e3);
        }
        std::printf("\n");
    }
    std::printf("sweep total: %zu cells, %.3f s cell wall time\n",
                result.size(), result.totalWallSeconds());

    std::printf("\nShape: protocol overhead dominates short "
                "messages (extra wires barely help); for long "
                "payloads each DATA wire adds a full 400 kbit/s of "
                "goodput, approaching 1.6 Mbit/s at 4 wires -- the "
                "Fig 15 family.\n");
    return 0;
}
