/**
 * @file
 * Regenerates Figure 15: parallel MBus goodput for 1-4 DATA wires at
 * a 400 kHz bus clock, from the closed form plus edge-level simulator
 * validation points using the actual lane-striping implementation.
 */

#include <cstdio>
#include <functional>

#include "analysis/goodput.hh"
#include "bench/bench_util.hh"
#include "mbus/system.hh"

using namespace mbus;

namespace {

double
simulatedGoodput(std::size_t payloadBytes, int lanes)
{
    sim::Simulator simulator;
    bus::SystemConfig cfg;
    cfg.dataLanes = lanes;
    bus::MBusSystem system(simulator, cfg);
    for (int i = 0; i < 3; ++i) {
        bus::NodeConfig nc;
        nc.name = "n" + std::to_string(i);
        nc.fullPrefix = 0x400u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();

    const int kMessages = 10;
    int done = 0;
    std::function<void()> send_next = [&] {
        bus::Message msg;
        msg.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
        msg.payload.assign(payloadBytes, 0xA7);
        system.node(1).send(msg, [&](const bus::TxResult &) {
            if (++done < kMessages)
                send_next();
        });
    };
    sim::SimTime start = simulator.now();
    send_next();
    simulator.runUntil([&] { return done == kMessages; },
                       60 * sim::kSecond);
    double elapsed = sim::toSeconds(simulator.now() - start);
    return 8.0 * static_cast<double>(payloadBytes) * kMessages /
           elapsed;
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 15: Parallel MBus Goodput (400 kHz bus clock)",
        "Pannuto et al., ISCA'15, Fig 15 + Sec 7");

    std::printf("%6s %12s %12s %12s %12s\n", "bytes", "1 wire",
                "2 wires", "3 wires", "4 wires");
    for (std::size_t n = 0; n <= 128; n += 8) {
        std::printf("%6zu", n);
        for (int lanes = 1; lanes <= 4; ++lanes) {
            std::printf("%12.0f", analysis::parallelGoodputBps(
                                      400e3, n, lanes));
        }
        std::printf("\n");
    }

    benchutil::section("Edge-level simulator validation (actual "
                       "lane-striped transfers, kbit/s)");
    std::printf("%6s %10s %10s %10s %10s\n", "bytes", "1w", "2w",
                "3w", "4w");
    for (std::size_t n : {16u, 64u, 128u}) {
        std::printf("%6zu", n);
        for (int lanes = 1; lanes <= 4; ++lanes)
            std::printf("%10.1f", simulatedGoodput(n, lanes) / 1e3);
        std::printf("\n");
    }

    std::printf("\nShape: protocol overhead dominates short "
                "messages (extra wires barely help); for long "
                "payloads each DATA wire adds a full 400 kbit/s of "
                "goodput, approaching 1.6 Mbit/s at 4 wires -- the "
                "Fig 15 family.\n");
    return 0;
}
