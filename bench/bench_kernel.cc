/**
 * @file
 * Event-kernel throughput benchmark: the slab-allocated kernel
 * against the seed's shared_ptr/std::function design.
 *
 * The seed kernel (priority_queue of {time, seq, std::function,
 * shared_ptr<State>} entries) is replicated verbatim in the `legacy`
 * namespace below, so the before/after comparison stays reproducible
 * forever, independent of git history. Three workloads:
 *
 *  - tick_chain: one self-rescheduling event, the pattern behind the
 *    mediator's clock generation -- pure schedule/execute cost;
 *  - tick_train: the same edge stream carried by kernel edge trains
 *    (scheduleEdgeTrain): one slab event per chunk of edges instead
 *    of one per edge;
 *  - cancel_heavy: every event schedules a timeout it then cancels,
 *    the pattern behind ring checks and watchdogs;
 *  - net_chain: the real wire stack, 14 forwarding hops (a plausible
 *    ring), measuring delivered edges through Net fanout;
 *  - net_train: the same ring driven rhythmically with net-level
 *    edge-train batching enabled (the MBus CLK broadcast shape);
 *  - dispatch_fanout: one net fanning edges out to 1/4/16 listeners,
 *    per-edge onNetEdge delivery vs chunked onEdges runs -- the
 *    listener-side analogue of kernel edge trains. Reports delivered
 *    edges/sec and the deterministic listener calls per edge.
 *
 * Alongside throughput, the bench measures events/bit -- kernel
 * events retired per delivered edge, the scheduler-operation metric
 * the edge-train work reduces -- before (discrete) and after
 * (trains) on the tick and forwarding workloads.
 *
 * Results print as a table and are written as machine-readable JSON
 * (default BENCH_kernel.json). The JSON keeps a "runs" history:
 * existing entries in the output file are preserved and the new run
 * is appended, so the perf trajectory accumulates across commits.
 *
 * Usage: bench_kernel [--smoke] [--out PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/fsio.hh"
#include "sim/simulator.hh"
#include "wire/net.hh"

namespace legacy {

// ----------------------------------------------------------------- //
// Faithful replica of the seed event kernel (PR 1 refactored it      //
// away): one make_shared per schedule, std::function entries, a      //
// shared live counter, tombstone cancellation.                       //
// ----------------------------------------------------------------- //

using SimTime = mbus::sim::SimTime;
using EventFunction = std::function<void()>;
constexpr SimTime kTimeForever = mbus::sim::kTimeForever;

class EventQueue;

class EventHandle
{
  public:
    EventHandle() = default;

    void
    cancel()
    {
        if (auto s = state_.lock()) {
            if (!s->cancelled && !s->fired) {
                s->cancelled = true;
                if (auto live = s->liveCounter.lock())
                    --*live;
            }
        }
    }

    bool
    pending() const
    {
        auto s = state_.lock();
        return s && !s->cancelled && !s->fired;
    }

  private:
    friend class EventQueue;

    struct State
    {
        bool cancelled = false;
        bool fired = false;
        std::weak_ptr<std::uint64_t> liveCounter;
    };

    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state))
    {}

    std::weak_ptr<State> state_;
};

class EventQueue
{
  public:
    EventHandle
    schedule(SimTime when, EventFunction fn)
    {
        auto state = std::make_shared<EventHandle::State>();
        state->liveCounter = live_;
        heap_.push(Entry{when, nextSeq_++, std::move(fn), state});
        ++*live_;
        return EventHandle(std::move(state));
    }

    bool empty() const { return *live_ == 0; }

    SimTime
    nextTime() const
    {
        skipCancelled();
        return heap_.empty() ? kTimeForever : heap_.top().when;
    }

    SimTime
    executeNext()
    {
        skipCancelled();
        Entry &top = const_cast<Entry &>(heap_.top());
        SimTime when = top.when;
        EventFunction fn = std::move(top.fn);
        auto state = std::move(top.state);
        heap_.pop();
        state->fired = true;
        --*live_;
        ++executed_;
        fn();
        return when;
    }

    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        EventFunction fn;
        std::shared_ptr<EventHandle::State> state;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    void
    skipCancelled() const
    {
        while (!heap_.empty() && heap_.top().state->cancelled)
            heap_.pop();
    }

    mutable std::priority_queue<Entry, std::vector<Entry>,
                                std::greater<Entry>> heap_;
    std::uint64_t nextSeq_ = 0;
    std::shared_ptr<std::uint64_t> live_ =
        std::make_shared<std::uint64_t>(0);
    std::uint64_t executed_ = 0;
};

class Simulator
{
  public:
    SimTime now() const { return now_; }

    EventHandle
    schedule(SimTime delay, EventFunction fn)
    {
        return queue_.schedule(now_ + delay, std::move(fn));
    }

    void
    run()
    {
        while (!queue_.empty())
            now_ = queue_.executeNext();
    }

    std::uint64_t eventsExecuted() const { return queue_.executedCount(); }

  private:
    EventQueue queue_;
    SimTime now_ = 0;
};

} // namespace legacy

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * One self-rescheduling tick chain of @p n events, scheduled through
 * each kernel's native callback interface: the seed kernel only
 * accepts std::function; the slab kernel takes the context-thunk
 * functor directly (the refactor's intended usage).
 */
double
runTickChainLegacy(std::uint64_t n)
{
    legacy::Simulator sim;
    std::uint64_t remaining = n;
    std::function<void()> tick = [&] {
        if (--remaining > 0)
            sim.schedule(1000, tick);
    };
    auto t0 = Clock::now();
    sim.schedule(1000, tick);
    sim.run();
    return static_cast<double>(n) / secondsSince(t0);
}

struct SlabTick
{
    mbus::sim::Simulator *sim;
    std::uint64_t *remaining;

    void
    operator()() const
    {
        if (--*remaining > 0)
            sim->schedule(1000, SlabTick{sim, remaining});
    }
};

double
runTickChainSlab(std::uint64_t n)
{
    mbus::sim::Simulator sim;
    std::uint64_t remaining = n;
    auto t0 = Clock::now();
    sim.schedule(1000, SlabTick{&sim, &remaining});
    sim.run();
    return static_cast<double>(n) / secondsSince(t0);
}

/**
 * The train flavor of the tick chain: the same number of edges, but
 * carried by self edge trains (the mediator's clock-generation shape
 * after the batching refactor). The chunked driver is shared with
 * perf_gate (bench_util.hh) so the regression baseline measures
 * exactly this workload.
 */
double
runTickTrainSlab(std::uint64_t n, double *eventsPerEdge = nullptr)
{
    mbus::sim::Simulator sim;
    mbus::benchutil::TrainTickDriver sink;
    sink.sim = &sim;
    sink.remaining = n;
    auto t0 = Clock::now();
    sink.arm();
    sim.run();
    double rate = static_cast<double>(n) / secondsSince(t0);
    if (eventsPerEdge) {
        *eventsPerEdge = static_cast<double>(sim.eventsExecuted()) /
                         static_cast<double>(n);
    }
    return rate;
}

/**
 * Schedule/cancel churn: each tick schedules a "timeout" two periods
 * out and cancels the one it scheduled last time (the ring-check /
 * watchdog pattern). Counts both the tick and the timeout handling.
 */
template <typename Simulator, typename Handle>
double
runCancelHeavy(std::uint64_t n)
{
    Simulator sim;
    std::uint64_t remaining = n;
    Handle lastTimeout;
    std::function<void()> tick = [&] {
        lastTimeout.cancel();
        lastTimeout = sim.schedule(2500, [] {});
        if (--remaining > 0)
            sim.schedule(1000, tick);
    };
    auto t0 = Clock::now();
    sim.schedule(1000, tick);
    sim.run();
    return static_cast<double>(n) / secondsSince(t0);
}

/** The real stack: a 14-hop forwarding chain of Nets. */
double
runNetChain(std::uint64_t rounds)
{
    namespace sim = mbus::sim;
    namespace wire = mbus::wire;

    sim::Simulator simulator;
    const int kHops = 14;
    std::vector<std::unique_ptr<wire::Net>> nets;
    nets.reserve(kHops);
    for (int i = 0; i < kHops; ++i) {
        nets.push_back(std::make_unique<wire::Net>(
            simulator, "hop" + std::to_string(i), 10 * sim::kNanosecond,
            true));
    }

    struct Forwarder final : wire::EdgeListener
    {
        wire::Net *next = nullptr;
        void onNetEdge(wire::Net &, bool v) override { next->drive(v); }
    };
    std::vector<Forwarder> fwd(kHops - 1);
    for (int i = 0; i + 1 < kHops; ++i) {
        fwd[static_cast<std::size_t>(i)].next = nets[i + 1].get();
        nets[i]->listen(wire::Edge::Any, fwd[i]);
    }

    auto t0 = Clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (int e = 0; e < 100; ++e)
            nets[0]->drive(e % 2 == 0);
        simulator.run();
    }
    double events = static_cast<double>(rounds) * 100.0 * kHops;
    return events / secondsSince(t0);
}

/**
 * The MBus hot path proper: the shared 14-hop forwarding ring
 * (bench_util.hh) driven rhythmically, with or without net-level
 * edge-train batching. Reports delivered edges/second; optionally
 * kernel events per delivered edge -- the events/bit metric.
 */
double
runNetRing(std::uint64_t edges, bool trains,
           double *eventsPerEdge = nullptr)
{
    mbus::benchutil::ForwardRing ring(trains);
    std::uint64_t left = edges;
    auto t0 = Clock::now();
    bool first = false;
    while (left > 0) {
        auto chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, 100000));
        ring.pump(chunk, first);
        first = chunk % 2 ? !first : first;
        left -= chunk;
    }
    double delivered = static_cast<double>(edges) *
                       mbus::benchutil::ForwardRing::kHops;
    double rate = delivered / secondsSince(t0);
    if (eventsPerEdge)
        *eventsPerEdge = ring.eventsPerEdge(edges);
    return rate;
}

/**
 * Listener-dispatch fanout: one net, @p listeners subscribers, driven
 * with strictly alternating edges in 100-edge bursts. Per-edge mode
 * delivers every edge through onNetEdge (listeners calls per edge);
 * chunked mode registers the same subscribers through listenBatched
 * and flushes once per burst, so each burst costs one onEdges call
 * per listener. Returns delivered edges (edges x listeners) per
 * second; optionally the deterministic listener calls per edge.
 */
double
runDispatchFanout(std::uint64_t edges, int listeners, bool chunked,
                  double *callsPerEdge = nullptr)
{
    namespace sim = mbus::sim;
    namespace wire = mbus::wire;

    struct FanoutCounter final : wire::EdgeListener
    {
        std::uint64_t edges = 0;
        void onNetEdge(wire::Net &, bool) override { ++edges; }
        void
        onEdges(wire::Net &, wire::EdgeRun run) override
        {
            edges += run.count;
        }
    };

    sim::Simulator simulator;
    wire::Net net(simulator, "fanout", 10 * sim::kNanosecond, true);
    std::vector<FanoutCounter> subs(
        static_cast<std::size_t>(listeners));
    for (FanoutCounter &s : subs) {
        if (chunked)
            net.listenBatched(s);
        else
            net.listen(wire::Edge::Any, s);
    }
    net.setChunkedDispatch(chunked);

    auto t0 = Clock::now();
    bool next = false; // The net starts high: every drive edges.
    for (std::uint64_t e = 0; e < edges;) {
        for (int burst = 0; burst < 100 && e < edges; ++burst, ++e) {
            net.drive(next);
            next = !next;
        }
        simulator.run();
        net.flushDeferred();
    }
    double seconds = secondsSince(t0);

    std::uint64_t want = edges * static_cast<std::uint64_t>(listeners);
    std::uint64_t got = 0;
    for (const FanoutCounter &s : subs)
        got += s.edges;
    if (got != want) {
        std::fprintf(stderr,
                     "FAIL: dispatch_fanout delivered %llu edges, "
                     "expected %llu\n",
                     static_cast<unsigned long long>(got),
                     static_cast<unsigned long long>(want));
        std::exit(1);
    }
    if (callsPerEdge) {
        *callsPerEdge = static_cast<double>(net.dispatchCalls()) /
                        static_cast<double>(edges);
    }
    return static_cast<double>(want) / seconds;
}

struct Row
{
    std::string name;
    double legacyRate;
    double newRate;
};

/** One dispatch_fanout data point: delivered edges/sec and listener
 *  calls per edge, per-edge delivery vs chunked runs. */
struct FanoutRow
{
    int listeners;
    double perEdgeRate;
    double chunkedRate;
    double perEdgeCalls;
    double chunkedCalls;
};

/** One events/bit data point: kernel events per delivered edge,
 *  discrete path vs edge-train path. Deterministic (no wall clock). */
struct EpbRow
{
    std::string name;
    double before;
    double after;
};

/**
 * Pull the existing "runs" history entries (one per line) out of a
 * previous BENCH_kernel.json so the new run can be appended rather
 * than overwriting the trajectory. Returns an empty list when the
 * file is missing or predates the history format.
 */
std::vector<std::string>
readRunHistory(const std::string &path)
{
    std::vector<std::string> entries;
    std::ifstream in(path);
    if (!in)
        return entries;
    std::string line;
    bool inRuns = false;
    // Legacy (pre-history) files carry one run at the top level;
    // convert it into the first history entry so the data point from
    // earlier commits survives the format change.
    std::string legacyMode = "full";
    std::string legacySpeedups;
    while (std::getline(in, line)) {
        if (line.find("\"runs\": [") != std::string::npos) {
            inRuns = true;
            continue;
        }
        if (!inRuns) {
            std::size_t m = line.find("\"mode\": \"");
            if (m != std::string::npos) {
                std::string rest = line.substr(m + 9);
                legacyMode = rest.substr(0, rest.find('"'));
            }
            std::size_t n = line.find("{\"name\": \"");
            std::size_t s = line.find("\"speedup\": ");
            if (n != std::string::npos && s != std::string::npos) {
                std::string rest = line.substr(n + 10);
                std::string name = rest.substr(0, rest.find('"'));
                double speedup =
                    std::strtod(line.c_str() + s + 11, nullptr);
                std::ostringstream os;
                os << (legacySpeedups.empty() ? "" : ", ") << "\""
                   << name << "\": " << speedup;
                legacySpeedups += os.str();
            }
            continue;
        }
        std::size_t start = line.find('{');
        if (start == std::string::npos)
            break; // "]" (or anything else) closes the history.
        std::string entry = line.substr(start);
        while (!entry.empty() &&
               (entry.back() == ',' || entry.back() == ' '))
            entry.pop_back();
        entries.push_back(std::move(entry));
    }
    if (entries.empty() && !legacySpeedups.empty()) {
        entries.push_back("{\"mode\": \"" + legacyMode +
                          "\", \"speedups\": {" + legacySpeedups +
                          "}}");
    }
    return entries;
}

/** Best of three runs: damps scheduler/neighbour noise the same
 *  way for both kernels. */
template <typename Fn>
double
best3(Fn fn)
{
    double best = 0;
    for (int i = 0; i < 3; ++i) {
        double r = fn();
        if (r > best)
            best = r;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            outPath = argv[++i];
    }

    const std::uint64_t kChain = smoke ? 200000 : 4000000;
    const std::uint64_t kRounds = smoke ? 2000 : 30000;

    mbus::benchutil::banner(
        "bench_kernel: event-kernel throughput, slab vs. seed design",
        "ROADMAP north star (simulation rate); Secs 4.3-4.9 all ride "
        "this path");

    std::vector<Row> rows;
    rows.push_back({"tick_chain",
                    best3([&] { return runTickChainLegacy(kChain); }),
                    best3([&] { return runTickChainSlab(kChain); })});
    rows.push_back({"tick_train",
                    best3([&] { return runTickChainLegacy(kChain); }),
                    best3([&] { return runTickTrainSlab(kChain); })});
    rows.push_back(
        {"cancel_heavy",
         best3([&] {
             return runCancelHeavy<legacy::Simulator,
                                   legacy::EventHandle>(kChain);
         }),
         best3([&] {
             return runCancelHeavy<mbus::sim::Simulator,
                                   mbus::sim::EventHandle>(kChain);
         })});

    double netRate = best3([&] { return runNetChain(kRounds); });
    const std::uint64_t kRingEdges = smoke ? 20000 : 200000;
    double ringDiscreteRate =
        best3([&] { return runNetRing(kRingEdges, false); });
    double ringTrainRate =
        best3([&] { return runNetRing(kRingEdges, true); });

    const std::uint64_t kFanoutEdges = smoke ? 100000 : 1000000;
    std::vector<FanoutRow> fanout;
    for (int listeners : {1, 4, 16}) {
        FanoutRow row;
        row.listeners = listeners;
        row.perEdgeRate = best3([&] {
            return runDispatchFanout(kFanoutEdges, listeners, false);
        });
        row.chunkedRate = best3([&] {
            return runDispatchFanout(kFanoutEdges, listeners, true);
        });
        // calls/edge is deterministic: one small fixed-size run each.
        (void)runDispatchFanout(10000, listeners, false,
                                &row.perEdgeCalls);
        (void)runDispatchFanout(10000, listeners, true,
                                &row.chunkedCalls);
        fanout.push_back(row);
    }

    // events/bit: kernel events retired per delivered edge --
    // deterministic, measured once on a fixed-size run.
    std::vector<EpbRow> epb;
    {
        double tickAfter = 0;
        (void)runTickTrainSlab(100000, &tickAfter);
        // Discrete path: one kernel event per tick, by construction.
        epb.push_back({"tick", 1.0, tickAfter});
        double fwdBefore = 0, fwdAfter = 0;
        (void)runNetRing(10000, false, &fwdBefore);
        (void)runNetRing(10000, true, &fwdAfter);
        epb.push_back({"forward_ring", fwdBefore, fwdAfter});
    }

    // Pool behaviour on a steady-state run (for the JSON record).
    mbus::sim::Simulator poolSim;
    {
        std::uint64_t remaining = 10000;
        std::function<void()> tick = [&] {
            if (--remaining > 0)
                poolSim.schedule(1000, tick);
        };
        poolSim.schedule(1000, tick);
        poolSim.run();
    }

    mbus::benchutil::section("events/sec (higher is better)");
    std::printf("%-14s %15s %15s %9s\n", "workload", "seed-kernel",
                "slab-kernel", "speedup");
    for (const Row &r : rows) {
        std::printf("%-14s %15.0f %15.0f %8.2fx\n", r.name.c_str(),
                    r.legacyRate, r.newRate, r.newRate / r.legacyRate);
    }
    std::printf("%-14s %15s %15.0f %9s\n", "net_chain", "-", netRate,
                "-");
    std::printf("%-14s %15.0f %15.0f %8.2fx\n", "forward_ring",
                ringDiscreteRate, ringTrainRate,
                ringTrainRate / ringDiscreteRate);

    mbus::benchutil::section(
        "dispatch_fanout: delivered edges/sec, per-edge vs chunked "
        "listener delivery");
    std::printf("%-14s %15s %15s %9s %11s\n", "listeners", "per-edge",
                "chunked", "speedup", "calls/edge");
    for (const FanoutRow &r : fanout) {
        std::printf("%-14d %15.0f %15.0f %8.2fx %5.2f->%4.2f\n",
                    r.listeners, r.perEdgeRate, r.chunkedRate,
                    r.chunkedRate / r.perEdgeRate, r.perEdgeCalls,
                    r.chunkedCalls);
    }

    mbus::benchutil::section(
        "events/bit: kernel events per delivered edge (lower is "
        "better; deterministic)");
    std::printf("%-14s %12s %12s %11s\n", "workload", "discrete",
                "trains", "reduction");
    for (const EpbRow &r : epb) {
        std::printf("%-14s %12.4f %12.4f %10.2fx\n", r.name.c_str(),
                    r.before, r.after, r.before / r.after);
    }

    std::printf("\npool: slots=%zu heap-spilled callbacks=%llu "
                "(steady-state 10k-event run)\n",
                poolSim.queue().slabSlots(),
                static_cast<unsigned long long>(
                    poolSim.queue().heapCallbackCount()));

    // JSON record. The current run's numbers stay at the top level
    // (latest-run consumers keep working); the "runs" array carries
    // the whole trajectory, with any prior entries in the output file
    // preserved and this run appended.
    std::vector<std::string> history = readRunHistory(outPath);
    std::ostringstream runEntry;
    // "pr" tags each history entry with the change that produced it,
    // so the trajectory reads as a per-PR series. Entries from before
    // the tag simply lack the field.
    runEntry << "{\"pr\": 6, \"mode\": \"" << (smoke ? "smoke" : "full")
             << "\", \"events_per_bit\": {";
    for (std::size_t i = 0; i < epb.size(); ++i) {
        runEntry << (i ? ", " : "") << "\"" << epb[i].name
                 << "\": {\"before\": " << epb[i].before
                 << ", \"after\": " << epb[i].after << "}";
    }
    runEntry << "}, \"speedups\": {";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        runEntry << (i ? ", " : "") << "\"" << rows[i].name
                 << "\": " << rows[i].newRate / rows[i].legacyRate;
    }
    runEntry << "}, \"dispatch_fanout\": {";
    for (std::size_t i = 0; i < fanout.size(); ++i) {
        runEntry << (i ? ", " : "") << "\"l"
                 << fanout[i].listeners
                 << "\": " << fanout[i].chunkedRate /
                                  fanout[i].perEdgeRate;
    }
    runEntry << "}}";
    history.push_back(runEntry.str());

    // This rewrites the accumulated trajectory file in place, so it
    // goes through the crash-safe temp-file + rename writer: a kill
    // mid-emission can never eat the history.
    std::ostringstream json;
    json << "{\n  \"bench\": \"bench_kernel\",\n  \"mode\": \""
         << (smoke ? "smoke" : "full") << "\",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        json << "    {\"name\": \"" << r.name
             << "\", \"seed_events_per_sec\": " << r.legacyRate
             << ", \"slab_events_per_sec\": " << r.newRate
             << ", \"speedup\": " << r.newRate / r.legacyRate << "}"
             << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    json << "  ],\n  \"events_per_bit\": [\n";
    for (std::size_t i = 0; i < epb.size(); ++i) {
        const EpbRow &r = epb[i];
        json << "    {\"name\": \"" << r.name
             << "\", \"before\": " << r.before
             << ", \"after\": " << r.after
             << ", \"reduction\": " << r.before / r.after << "}"
             << (i + 1 < epb.size() ? ",\n" : "\n");
    }
    json << "  ],\n  \"dispatch_fanout\": [\n";
    for (std::size_t i = 0; i < fanout.size(); ++i) {
        const FanoutRow &r = fanout[i];
        json << "    {\"listeners\": " << r.listeners
             << ", \"per_edge_events_per_sec\": " << r.perEdgeRate
             << ", \"chunked_events_per_sec\": " << r.chunkedRate
             << ", \"speedup\": " << r.chunkedRate / r.perEdgeRate
             << ", \"per_edge_calls_per_edge\": " << r.perEdgeCalls
             << ", \"chunked_calls_per_edge\": " << r.chunkedCalls
             << "}" << (i + 1 < fanout.size() ? ",\n" : "\n");
    }
    json << "  ],\n  \"net_chain_events_per_sec\": " << netRate
         << ",\n  \"forward_ring_events_per_sec\": {\"discrete\": "
         << ringDiscreteRate << ", \"trains\": " << ringTrainRate
         << "},\n  \"pool\": {\"slab_slots\": "
         << poolSim.queue().slabSlots()
         << ", \"heap_spilled_callbacks\": "
         << poolSim.queue().heapCallbackCount() << "},\n"
         << "  \"runs\": [\n";
    for (std::size_t i = 0; i < history.size(); ++i) {
        json << "    " << history[i]
             << (i + 1 < history.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    if (!mbus::sim::atomicWriteFile(outPath, json.str())) {
        std::fprintf(stderr, "FAIL: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    std::printf("\nwrote %s (%zu run%s in history)\n", outPath.c_str(),
                history.size(), history.size() == 1 ? "" : "s");

    // Regression gate for CI. Wall-clock comparisons on shared
    // runners are noisy, so only a collapse below half the seed
    // kernel's rate is treated as a real regression; smaller dips
    // warn without failing the build.
    for (const Row &r : rows) {
        if (r.newRate < 0.5 * r.legacyRate) {
            std::fprintf(stderr,
                         "FAIL: %s collapsed below half the seed "
                         "kernel's rate\n",
                         r.name.c_str());
            return 1;
        }
        if (r.newRate < r.legacyRate) {
            std::fprintf(stderr,
                         "WARN: %s slower than seed kernel this run "
                         "(likely runner noise)\n",
                         r.name.c_str());
        }
    }
    // events/bit is deterministic, so this gate is exact: trains must
    // at least halve the kernel events per edge on covered workloads.
    for (const EpbRow &r : epb) {
        if (r.after * 2.0 > r.before) {
            std::fprintf(stderr,
                         "FAIL: %s events/bit only %f -> %f (< 2x "
                         "reduction)\n",
                         r.name.c_str(), r.before, r.after);
            return 1;
        }
    }
    // Same for listener calls/edge: chunked runs must at least halve
    // the per-edge dispatch cost at every fanout width.
    for (const FanoutRow &r : fanout) {
        if (r.chunkedCalls * 2.0 > r.perEdgeCalls) {
            std::fprintf(stderr,
                         "FAIL: dispatch_fanout l%d calls/edge only "
                         "%f -> %f (< 2x reduction)\n",
                         r.listeners, r.perEdgeCalls, r.chunkedCalls);
            return 1;
        }
    }
    return 0;
}
