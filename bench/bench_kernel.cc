/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate
 * itself: event throughput, net propagation, and full MBus
 * transactions per wall-clock second. These gauge how large an MBus
 * workload (e.g. the 28.8 kB image of Sec 6.3.2) the simulator
 * sustains.
 */

#include <benchmark/benchmark.h>

#include "mbus/system.hh"
#include "sim/simulator.hh"
#include "wire/net.hh"

using namespace mbus;

namespace {

void
BM_EventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator simulator;
        int remaining = static_cast<int>(state.range(0));
        std::function<void()> tick = [&] {
            if (--remaining > 0)
                simulator.schedule(1000, tick);
        };
        simulator.schedule(1000, tick);
        simulator.run();
        benchmark::DoNotOptimize(simulator.now());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void
BM_NetPropagationChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator simulator;
        const int kHops = static_cast<int>(state.range(0));
        std::vector<std::unique_ptr<wire::Net>> nets;
        for (int i = 0; i < kHops; ++i) {
            nets.push_back(std::make_unique<wire::Net>(
                simulator, "n", 10 * sim::kNanosecond, true));
        }
        for (int i = 0; i + 1 < kHops; ++i) {
            wire::Net *next = nets[static_cast<std::size_t>(i + 1)].get();
            nets[static_cast<std::size_t>(i)]->subscribe(
                wire::Edge::Any, [next](bool v) { next->drive(v); });
        }
        for (int edge = 0; edge < 100; ++edge)
            nets[0]->drive(edge % 2 == 0);
        simulator.run();
        benchmark::DoNotOptimize(nets.back()->transitions());
    }
    state.SetItemsProcessed(state.iterations() * 100 * state.range(0));
}
BENCHMARK(BM_NetPropagationChain)->Arg(14);

void
BM_FullTransaction(benchmark::State &state)
{
    const std::size_t payload =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator simulator;
        bus::MBusSystem system(simulator);
        for (int i = 0; i < 3; ++i) {
            bus::NodeConfig nc;
            nc.name = "n" + std::to_string(i);
            nc.fullPrefix = 0xC00u + static_cast<std::uint32_t>(i);
            nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
            nc.powerGated = false;
            system.addNode(nc);
        }
        system.finalize();
        bus::Message msg;
        msg.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
        msg.payload.assign(payload, 0xA5);
        auto r = system.sendAndWait(1, msg, sim::kSecond);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_FullTransaction)->Arg(8)->Arg(180)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
