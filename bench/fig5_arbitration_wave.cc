/**
 * @file
 * Regenerates Figure 5: the arbitration + priority-arbitration
 * waveform. Node 1 and node 3 request the bus nearly simultaneously;
 * node 1 wins arbitration topologically, and node 3 claims the bus
 * through the priority-arbitration cycle. Rendered as ASCII
 * waveforms ('#' = high, '_' = low) and dumped as fig5.vcd.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "mbus/system.hh"
#include "sim/vcd.hh"

using namespace mbus;

int
main()
{
    benchutil::banner("Figure 5: MBus Arbitration Waveform",
                      "Pannuto et al., ISCA'15, Fig 5");

    sim::Simulator simulator;
    bus::MBusSystem system(simulator);
    for (int i = 0; i < 4; ++i) {
        bus::NodeConfig nc;
        nc.name = i == 0 ? "med" : "node" + std::to_string(i);
        nc.fullPrefix = 0x500u + static_cast<std::uint32_t>(i);
        nc.staticShortPrefix = static_cast<std::uint8_t>(i + 1);
        nc.powerGated = false;
        system.addNode(nc);
    }
    system.finalize();

    sim::TraceRecorder rec;
    system.attachTrace(rec);

    // Node 1 requests; node 3 requests with a priority message a
    // moment later (the paper's "node 1 shortly after node 3" race,
    // roles swapped so priority arbitration visibly flips the win).
    bus::Message plain;
    plain.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
    plain.payload = {0x0F};
    int done = 0;
    system.node(1).send(plain,
                        [&](const bus::TxResult &) { ++done; });

    bus::Message urgent;
    urgent.dest = bus::Address::shortAddr(3, bus::kFuMailbox);
    urgent.payload = {0xF0};
    urgent.priority = true;
    simulator.schedule(sim::kMicrosecond, [&] {
        system.node(3).send(urgent,
                            [&](const bus::TxResult &) { ++done; });
    });

    simulator.runUntil([&] { return done == 2; }, sim::kSecond);
    system.runUntilIdle(sim::kSecond);

    sim::SimTime period =
        sim::periodFromHz(system.config().busClockHz);
    std::printf("\nFirst transaction (priority winner: node3), one "
                "cell = 1/8 bus cycle:\n\n");
    rec.renderAscii(std::cout, 0, 18 * period, period / 8);

    std::printf("\npriority wins: node1=%llu node3=%llu "
                "(arbitration losses: node1=%llu)\n",
                static_cast<unsigned long long>(
                    system.node(1).busController().stats()
                        .priorityWins),
                static_cast<unsigned long long>(
                    system.node(3).busController().stats()
                        .priorityWins),
                static_cast<unsigned long long>(
                    system.node(1).busController().stats()
                        .arbitrationLosses));

    std::ofstream vcd("fig5.vcd");
    rec.writeVcd(vcd);
    std::printf("full trace written to fig5.vcd\n");
    return 0;
}
