/**
 * @file
 * CI smoke sweep: a small grid on 2 worker threads, re-run
 * single-threaded, with the shard-determinism property checked
 * end-to-end (byte-identical CSV + equal fingerprints). Exits
 * non-zero on any divergence, wedge, or corruption, so CI fails the
 * PR. Writes the deterministic CSV (plus wall times to stdout).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sweep/sweep.hh"

using namespace mbus;

int
main(int argc, char **argv)
{
    const char *out = "sweep_smoke.csv";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];

    benchutil::banner("Sweep smoke: shard determinism on a small grid",
                      "sweep engine self-check (CI gate)");

    std::vector<sweep::ScenarioSpec> grid;
    for (int nodes : {2, 4, 8}) {
        for (std::size_t payload : {std::size_t{0}, std::size_t{8},
                                    std::size_t{32}}) {
            sweep::ScenarioSpec s;
            s.name = "smoke_n" + std::to_string(nodes) + "_b" +
                     std::to_string(payload);
            s.nodes = nodes;
            s.payloadBytes = payload;
            s.messages = 4;
            s.traffic = sweep::TrafficPattern::RandomPairs;
            s.interjectRate = 0.25;
            s.captureVcd = true;
            grid.push_back(std::move(s));
        }
    }

    sweep::SweepConfig sharded;
    sharded.threads = 2;
    sweep::SweepConfig solo;
    solo.threads = 1;
    sweep::SweepResult a = sweep::SweepDriver(sharded).run(grid);
    sweep::SweepResult b = sweep::SweepDriver(solo).run(grid);

    std::ostringstream csvA, csvB;
    a.writeCsv(csvA);
    b.writeCsv(csvB);
    bool identical = csvA.str() == csvB.str() &&
                     a.fingerprint() == b.fingerprint();

    sweep::SweepAggregate agg = a.aggregate();
    std::printf("cells=%llu planned=%llu acked=%llu interrupted=%llu "
                "mismatches=%llu wedged=%llu\n",
                static_cast<unsigned long long>(agg.cells),
                static_cast<unsigned long long>(agg.planned),
                static_cast<unsigned long long>(agg.acked),
                static_cast<unsigned long long>(agg.interrupted),
                static_cast<unsigned long long>(agg.mismatches),
                static_cast<unsigned long long>(agg.wedgedCells));
    std::printf("fingerprint=%016llx (2 threads) vs %016llx (1 "
                "thread): %s\n",
                static_cast<unsigned long long>(a.fingerprint()),
                static_cast<unsigned long long>(b.fingerprint()),
                identical ? "IDENTICAL" : "DIVERGED");
    std::printf("wall: %.3f s across %zu cells (2 threads)\n",
                a.totalWallSeconds(), a.size());

    std::ofstream os(out);
    a.writeCsv(os, /*includeWallTime=*/true);
    std::printf("wrote %s\n", out);

    bool healthy = agg.mismatches == 0 && agg.wedgedCells == 0 &&
                   agg.planned == agg.acked + agg.naked +
                                      agg.broadcasts + agg.interrupted +
                                      agg.rxAborts + agg.failed;
    if (!identical || !healthy) {
        std::printf("SMOKE SWEEP FAILED\n");
        return 1;
    }
    std::printf("SMOKE SWEEP OK\n");
    return 0;
}
