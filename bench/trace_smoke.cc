/**
 * @file
 * CI observability smoke: a traced faulty grid spanning all five
 * fabrics runs on 2 worker threads and is re-run single-threaded,
 * with the trace determinism contract checked end to end (per-cell
 * Chrome JSON byte identity + equal sweep fingerprints, the new
 * trace/metrics CSV columns included). A deliberately wedged cell
 * (time limit far below its traffic) then must produce a
 * flight-recorder dump naming its stalled transaction. The traced
 * cell 0's JSON lands next to the CSV via the crash-safe writer, so
 * CI can upload a Perfetto-loadable artifact from every run. Exits
 * non-zero on any divergence.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/fsio.hh"
#include "sim/random.hh"
#include "sweep/sweep.hh"

using namespace mbus;

namespace {

const backend::BackendKind kFabrics[] = {
    backend::BackendKind::Mbus,      backend::BackendKind::I2cStd,
    backend::BackendKind::I2cOracle, backend::BackendKind::Bitbang,
    backend::BackendKind::Firmware,
};

} // namespace

int
main(int argc, char **argv)
{
    const char *out = "trace_smoke.csv";
    const char *traceOut = "trace_smoke_cell0.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
        if (std::strcmp(argv[i], "--trace-out") == 0)
            traceOut = argv[i + 1];
    }

    benchutil::banner(
        "Trace smoke: deterministic observability on five fabrics",
        "protocol tracer + flight recorder self-check (CI gate)");

    sim::Random rng(0x7124CE00ULL);
    std::vector<sweep::ScenarioSpec> grid;
    for (std::size_t i = 0; i < 25; ++i) {
        sweep::ScenarioSpec s;
        s.name = "trace_smoke" + std::to_string(i);
        s.backend = kFabrics[i % 5];
        s.nodes = static_cast<int>(rng.between(3, 6));
        s.payloadBytes = rng.below(9);
        s.messages = static_cast<int>(rng.between(2, 4));
        s.traffic = static_cast<sweep::TrafficPattern>(rng.below(4));
        s.powerGated = rng.chance(0.3);
        s.interjectRate = rng.chance(0.5) ? 0.4 : 0.0;
        s.retry.maxRetries = static_cast<int>(rng.below(3));
        s.retry.backoffEpochs = 8;

        fault::FaultEntry e;
        e.kind = static_cast<fault::FaultKind>(rng.below(6));
        e.count = 1 + static_cast<int>(rng.below(2));
        e.endS = 1.5e-3;
        e.durationS = 1e-4 + 9e-4 * rng.uniform();
        e.jitterFrac = 0.3;
        e.pulses = 1 + static_cast<int>(rng.below(4));
        e.driftFrac = 0.05;
        s.faults.name = "smoke";
        s.faults.watchdogEpochs = 32;
        s.faults.entries.push_back(e);

        s.trace.protocol = true;
        s.trace.flight = true;
        grid.push_back(std::move(s));
    }

    sweep::SweepConfig sharded;
    sharded.threads = 2;
    sweep::SweepConfig solo;
    solo.threads = 1;
    sweep::SweepResult a = sweep::SweepDriver(sharded).run(grid);
    sweep::SweepResult b = sweep::SweepDriver(solo).run(grid);

    bool ok = true;
    std::uint64_t events = 0, dumps = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const sweep::ScenarioStats &sa = a.cell(i).stats;
        const sweep::ScenarioStats &sb = b.cell(i).stats;
        events += sa.traceEvents;
        dumps += sa.flightDumps.size();
        if (sa.traceJson != sb.traceJson ||
            sa.traceHash != sb.traceHash ||
            sa.flightDumps != sb.flightDumps) {
            std::fprintf(stderr,
                         "FAIL: cell %zu trace diverged between 2 "
                         "threads and 1\n",
                         i);
            ok = false;
        }
        if (sa.traceEvents == 0) {
            std::fprintf(stderr, "FAIL: cell %zu recorded no events\n",
                         i);
            ok = false;
        }
    }
    std::ostringstream csvA, csvB;
    a.writeCsv(csvA);
    b.writeCsv(csvB);
    if (csvA.str() != csvB.str() ||
        a.fingerprint() != b.fingerprint()) {
        std::fprintf(stderr,
                     "FAIL: sweep CSV/fingerprint diverged across "
                     "thread counts\n");
        ok = false;
    }
    std::printf("grid: %zu cells, %llu trace events, %llu flight "
                "dumps, fingerprint %016llx\n",
                a.size(), static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(dumps),
                static_cast<unsigned long long>(a.fingerprint()));

    // Forced wedge: a cell whose time limit cannot cover its traffic
    // must trip the wedge guard and dump the stalled transaction.
    sweep::ScenarioSpec wedged = grid[0];
    wedged.name = "forced_wedge";
    wedged.faults = fault::FaultSpec{};
    wedged.messages = 8;
    wedged.payloadBytes = 16;
    wedged.timeLimit = 40 * sim::kMicrosecond;
    sweep::CellResult w =
        sweep::SweepDriver(solo).runCell(wedged, 0);
    if (!w.stats.wedged) {
        std::fprintf(stderr, "FAIL: forced-wedge cell did not wedge\n");
        ok = false;
    } else if (w.stats.flightDumps.empty()) {
        std::fprintf(stderr,
                     "FAIL: wedged cell produced no flight dump\n");
        ok = false;
    } else {
        const std::string &d = w.stats.flightDumps.back();
        if (d.find("wedge-guard") == std::string::npos ||
            d.find("tx#") == std::string::npos) {
            std::fprintf(stderr,
                         "FAIL: wedge dump does not name the stalled "
                         "transaction:\n%s",
                         d.c_str());
            ok = false;
        } else {
            std::printf("forced wedge: dump names the stalled "
                        "transaction (ok)\n");
        }
    }

    if (!a.writeCsvFile(out)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", out);
        ok = false;
    }
    // The Perfetto-loadable artifact CI uploads.
    if (!sim::atomicWriteFile(traceOut, a.cell(0).stats.traceJson)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", traceOut);
        ok = false;
    }
    std::printf("wrote %s and %s\n", out, traceOut);
    std::printf(ok ? "TRACE SMOKE OK\n" : "TRACE SMOKE FAILED\n");
    return ok ? 0 : 1;
}
